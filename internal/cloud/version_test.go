package cloud

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGeneratedMarketIsVersionOne(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	if m.Version() != 1 {
		t.Fatalf("fresh market has version %d, want 1", m.Version())
	}
}

func TestAppendBumpsVersionMonotonically(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	key := m.Keys()[0]
	before := m.Trace(key.Type, key.Zone)
	n := before.Len()

	v, err := m.Append(key, []float64{0.05, 0.06, 0.07})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("first append returned version %d, want 2", v)
	}
	if got := m.Version(); got != 2 {
		t.Fatalf("Version() = %d after append, want 2", got)
	}
	after := m.Trace(key.Type, key.Zone)
	if after.Len() != n+3 {
		t.Fatalf("trace grew to %d samples, want %d", after.Len(), n+3)
	}
	if after.Prices[n] != 0.05 || after.Prices[n+2] != 0.07 {
		t.Fatal("appended samples not at the tail")
	}
	// Immutability: the pre-append trace view is untouched, so snapshots
	// taken before ingestion stay internally consistent.
	if before.Len() != n {
		t.Fatalf("pre-append trace mutated to %d samples", before.Len())
	}

	if v, err = m.Append(key, nil); err != nil || v != 3 {
		t.Fatalf("empty append: version %d err %v, want 3 nil", v, err)
	}
}

func TestAppendRejectsUnknownMarketAndBadPrices(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	if _, err := m.Append(MarketKey{"no-such-type", ZoneA}, []float64{0.1}); !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("unknown market append returned %v, want ErrUnknownMarket", err)
	}
	key := m.Keys()[0]
	for _, bad := range [][]float64{{-0.1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := m.Append(key, bad); err == nil {
			t.Fatalf("append accepted bad sample %v", bad)
		}
	}
	if m.Version() != 1 {
		t.Fatalf("failed appends bumped version to %d", m.Version())
	}
}

func TestWindowCarriesVersion(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	if _, err := m.Append(m.Keys()[0], []float64{0.1}); err != nil {
		t.Fatal(err)
	}
	if w := m.Window(0, 12); w.Version() != m.Version() {
		t.Fatalf("window has version %d, market %d", w.Version(), m.Version())
	}
}

// TestSnapshotVersionMatchesVector: a snapshot's composite version is
// derived from its captured vector (base + one tick per append each
// shard had seen), so the two always agree within a snapshot — the
// invariant that lets a cached plan's market_version be reconstructed
// from the version vector used as its cache key.
func TestSnapshotVersionMatchesVector(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	for i, k := range m.Keys() {
		for j := 0; j <= i%3; j++ {
			if _, err := m.Append(k, []float64{0.1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := m.Capture()
	ticks := uint64(0)
	for _, v := range snap.VersionVector() {
		ticks += v - 1
	}
	if got, want := snap.Version(), 1+ticks; got != want {
		t.Fatalf("snapshot version %d, vector implies %d", got, want)
	}
	// On a quiescent market the snapshot also matches the live version.
	if snap.Version() != m.Version() {
		t.Fatalf("snapshot version %d, live market %d", snap.Version(), m.Version())
	}
}

func TestRetainedStartFor(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	if got := m.RetainedStartFor(nil); got != 0 {
		t.Fatalf("uncompacted market retained start %v, want 0", got)
	}
	m.SetRetention(10)
	if got := m.RetainedStartFor(nil); math.Abs(got-14) > 1 {
		t.Fatalf("retained start %v after trimming 24h to 10h, want ~14", got)
	}
	if got := m.RetainedStartFor([]MarketKey{m.Keys()[0]}); got <= 0 {
		t.Fatalf("retained start for a single compacted shard = %v, want > 0", got)
	}
}

func TestMinDuration(t *testing.T) {
	m := GenerateMarket(DefaultCatalog(), DefaultZones(), 24, 1)
	if d := m.MinDuration(); math.Abs(d-24) > 1 {
		t.Fatalf("MinDuration %v, want ~24", d)
	}
	// Appending to one market moves the frontier only when every market
	// catches up.
	if _, err := m.Append(m.Keys()[0], []float64{0.1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if d := m.MinDuration(); math.Abs(d-24) > 1 {
		t.Fatalf("MinDuration moved to %v after a single-market append", d)
	}
	if (&Market{}).MinDuration() != 0 {
		t.Fatal("empty market should report zero duration")
	}
}

func TestLoadMarketRoundTripsTracegenLayout(t *testing.T) {
	dir := t.TempDir()
	src := GenerateMarket(DefaultCatalog(), DefaultZones(), 6, 3)
	for _, key := range src.Keys() {
		name := strings.ReplaceAll(key.String(), "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Trace(key.Type, key.Zone).WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	m, err := LoadMarket(dir, DefaultCatalog(), DefaultZones())
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != 1 {
		t.Fatalf("loaded market has version %d, want 1", m.Version())
	}
	for _, key := range src.Keys() {
		a, b := src.Trace(key.Type, key.Zone), m.Trace(key.Type, key.Zone)
		if a.Len() != b.Len() {
			t.Fatalf("%v: %d samples loaded, want %d", key, b.Len(), a.Len())
		}
		for i := range a.Prices {
			if math.Abs(a.Prices[i]-b.Prices[i]) > 1e-6 {
				t.Fatalf("%v sample %d: %v loaded, want %v", key, i, b.Prices[i], a.Prices[i])
			}
		}
	}

	// A hole in the directory is an error, not a silent partial market.
	if err := os.Remove(filepath.Join(dir, strings.ReplaceAll(src.Keys()[0].String(), "/", "_")+".csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMarket(dir, DefaultCatalog(), DefaultZones()); err == nil {
		t.Fatal("LoadMarket accepted a directory with a missing market")
	}
}
