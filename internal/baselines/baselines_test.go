package baselines

import (
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/opt"
	"sompi/internal/replay"
)

func testMarket(seed uint64) *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, seed)
}

func runnerFor(m *cloud.Market, p app.Profile) *replay.Runner {
	return &replay.Runner{Market: m, Profile: p}
}

func looseDeadline(p app.Profile) float64 {
	return opt.FastestOnDemand(nil, p).T * 1.5
}

func TestBaselineUsesFastestFleet(t *testing.T) {
	m := testMarket(1)
	r := runnerFor(m, app.BT())
	o, err := Baseline().Run(r, looseDeadline(app.BT()), 100)
	if err != nil {
		t.Fatal(err)
	}
	fast := opt.FastestOnDemand(nil, app.BT())
	if !o.Completed {
		t.Fatal("baseline did not complete")
	}
	if o.Cost != fast.FullCost() {
		t.Errorf("cost $%v, want the fastest fleet's $%v", o.Cost, fast.FullCost())
	}
}

func TestOnDemandOnlyCheaperThanBaselineWhenLoose(t *testing.T) {
	m := testMarket(2)
	p := app.BT()
	r := runnerFor(m, p)
	dl := looseDeadline(p)
	od, err := OnDemandOnly().Run(r, dl, 100)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Baseline().Run(r, dl, 100)
	if od.Cost >= base.Cost {
		t.Errorf("On-demand $%v not below Baseline $%v under a loose deadline", od.Cost, base.Cost)
	}
	if od.Hours > dl {
		t.Errorf("On-demand missed its own deadline: %v > %v", od.Hours, dl)
	}
}

func TestMaratheUsesCC2EverywhereWithCheckpoints(t *testing.T) {
	m := testMarket(3)
	p := app.BT()
	r := runnerFor(m, p)
	plan, err := Marathe(m).(replay.FixedPlan).Provider(r, looseDeadline(p), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != len(m.Zones()) {
		t.Fatalf("%d groups, want one per zone (%d)", len(plan.Groups), len(m.Zones()))
	}
	for _, gp := range plan.Groups {
		if gp.Group.Instance.Name != cloud.CC28XLarge.Name {
			t.Errorf("group on %s, Marathe only uses cc2.8xlarge", gp.Group.Instance.Name)
		}
		if gp.Bid != cloud.CC28XLarge.OnDemand {
			t.Errorf("bid %v, want the on-demand price", gp.Bid)
		}
		if gp.Interval <= 0 || gp.Interval > float64(gp.Group.T) {
			t.Errorf("interval %v outside (0, %d]", gp.Interval, gp.Group.T)
		}
	}
}

func TestMaratheOptPicksCheaperTypeForIOApp(t *testing.T) {
	// For the IO-intensive BTIO, cc2.8xlarge is disastrous; Marathe-Opt
	// must switch away from it under a loose deadline.
	m := testMarket(4)
	p := app.BTIO()
	r := runnerFor(m, p)
	plan, err := MaratheOpt(m).(replay.FixedPlan).Provider(r, looseDeadline(p)*2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) == 0 {
		t.Fatal("no groups")
	}
	if got := plan.Groups[0].Group.Instance.Name; got == cloud.CC28XLarge.Name {
		t.Error("Marathe-Opt kept cc2.8xlarge for an IO-intensive app")
	}
}

func TestSpotInfNeverDiesInReplay(t *testing.T) {
	m := testMarket(5)
	p := app.BT()
	r := runnerFor(m, p)
	o, err := SpotInf(m).Run(r, looseDeadline(p), 150)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Completed {
		t.Fatal("Spot-Inf did not complete")
	}
	if o.AllGroupsDead {
		t.Error("an infinite bid lost its group to an out-of-bid event")
	}
}

func TestSpotAvgBidsTheMean(t *testing.T) {
	m := testMarket(6)
	p := app.BT()
	r := runnerFor(m, p)
	plan, err := SpotAvg(m).(replay.FixedPlan).Provider(r, looseDeadline(p), 200)
	if err != nil {
		t.Fatal(err)
	}
	gp := plan.Groups[0]
	train := trainView(m, 200)
	mean := train.Trace(gp.Group.Key.Type, gp.Group.Key.Zone).Mean()
	if gp.Bid != mean {
		t.Errorf("bid %v, want the training-window mean %v", gp.Bid, mean)
	}
}

func TestAblationConfigurations(t *testing.T) {
	m := testMarket(7)
	cases := []struct {
		s          replay.Strategy
		name       string
		wantKappa  int
		wantNoCkpt bool
	}{
		{WithoutRP(m), "w/o-RP", 1, false},
		{WithoutCK(m), "w/o-CK", 0, true},
		{AllUnable(m), "All-Unable", 1, true},
		{WithoutMT(m), "w/o-MT", 0, false},
	}
	for _, c := range cases {
		os, ok := c.s.(*opt.OneShot)
		if !ok {
			t.Fatalf("%s is not a OneShot", c.name)
		}
		if os.Name() != c.name {
			t.Errorf("name %q, want %q", os.Name(), c.name)
		}
		if c.wantKappa > 0 && os.Base.Kappa != c.wantKappa {
			t.Errorf("%s kappa = %d, want %d", c.name, os.Base.Kappa, c.wantKappa)
		}
		if os.Base.DisableCheckpoints != c.wantNoCkpt {
			t.Errorf("%s DisableCheckpoints = %v", c.name, os.Base.DisableCheckpoints)
		}
	}
}

func TestAblationPlansHonorRestrictions(t *testing.T) {
	m := testMarket(8)
	p := app.BT()
	r := runnerFor(m, p)
	dl := looseDeadline(p)

	// w/o-RP: at most one circle group.
	o, err := WithoutRP(m).Run(r, dl, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Completed {
		t.Error("w/o-RP did not complete")
	}

	// All-Unable and w/o-CK at least execute to completion via hybrid
	// recovery even with fault tolerance stripped.
	for _, s := range []replay.Strategy{AllUnable(m), WithoutCK(m)} {
		o, err := s.Run(r, dl, 150)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !o.Completed {
			t.Errorf("%s did not complete", s.Name())
		}
	}
}

func TestSOMPICompletesAndBeatsBaselineLoose(t *testing.T) {
	m := testMarket(9)
	p := app.BT()
	r := runnerFor(m, p)
	dl := looseDeadline(p)
	st := replay.MonteCarlo(SOMPI(m), r, replay.MCConfig{Deadline: dl, Runs: 4, Seed: 2})
	if st.Failures > 0 {
		t.Fatalf("%d strategy failures", st.Failures)
	}
	base := opt.FastestOnDemand(nil, p).FullCost()
	if st.Cost.Mean() >= base {
		t.Errorf("SOMPI mean $%.0f not below Baseline $%.0f", st.Cost.Mean(), base)
	}
}

func TestSOMPIWindowLabel(t *testing.T) {
	m := testMarket(10)
	s := SOMPIWindow(m, 10)
	if s.Name() != "SOMPI-Tm10" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestTrainViewNeverPeeksForward(t *testing.T) {
	m := testMarket(11)
	train := trainView(m, 200)
	for _, k := range train.Keys() {
		if d := train.Trace(k.Type, k.Zone).Duration(); d > History+1 {
			t.Fatalf("training window %v spans %vh, max %v", k, d, History)
		}
	}
}
