// Package baselines implements every comparison algorithm in the paper's
// evaluation (Section 5) as a replay strategy:
//
//   - Baseline — best-performance on-demand fleet (costs/times in the
//     paper are normalized to it).
//   - On-demand — cheapest on-demand fleet meeting the deadline.
//   - Marathe — the state of the art [30]: replicated execution of
//     cc2.8xlarge spot instances across all availability zones.
//   - Marathe-Opt — Marathe with the best single instance type.
//   - Spot-Inf — cheapest spot type with an effectively infinite bid.
//   - Spot-Avg — cheapest spot type bidding the historical average price.
//   - All-Unable / w/o-RP / w/o-CK / w/o-MT — the fault-tolerance
//     ablations of Section 5.4.2.
//   - SOMPI — the paper's full adaptive optimizer.
package baselines

import (
	"fmt"
	"math"

	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/opt"
	"sompi/internal/replay"
	"sompi/internal/trace"
)

// History is how many hours of price history strategies train on before
// their start point. The paper trains on the previous two days; our
// synthetic markets reprice less often than 2014 EC2 did inside an
// episode, so four days are needed for the same number of observed
// episodes (and for the historical max H to approach the true spike
// ceiling).
const History = 96

// trainView returns the market window strictly before start.
func trainView(m cloud.MarketView, start float64) cloud.MarketView {
	lo := math.Max(0, start-History)
	return m.Window(lo, start-lo)
}

// marathesBid is the bid policy of the state-of-the-art comparison: bid
// the on-demand price of the instance type, which in Marathe et al.'s
// measurements made out-of-bid events rare but not impossible.
func maratheBid(it cloud.InstanceType) float64 { return it.OnDemand }

// InfiniteBid is the Spot-Inf bid (the paper literally uses $999).
const InfiniteBid = 999.0

// Baseline runs the application on the best-performance on-demand fleet.
func Baseline() replay.Strategy {
	return replay.FixedPlan{
		Label: "Baseline",
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			return model.Plan{Recovery: opt.FastestOnDemand(nil, r.Profile)}, nil
		},
	}
}

// OnDemandOnly picks the cheapest on-demand fleet that satisfies the
// deadline (the paper's "On-demand" comparison).
func OnDemandOnly() replay.Strategy {
	return replay.FixedPlan{
		Label: "On-demand",
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			od, err := opt.SelectOnDemand(cloud.DefaultCatalog(), r.Profile, deadline, 0)
			if err != nil {
				od = opt.FastestOnDemand(nil, r.Profile)
			}
			return model.Plan{Recovery: od}, nil
		},
	}
}

// Marathe replicates cc2.8xlarge spot instances across every availability
// zone of the market, bidding the on-demand price, with Young/Daly
// checkpoint intervals — the fixed-type state of the art.
func Marathe(m cloud.MarketView) replay.Strategy {
	return replay.FixedPlan{
		Label: "Marathe",
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			return marathePlan(trainView(m, start), r, cloud.CC28XLarge)
		},
	}
}

// MaratheOpt is Marathe with the instance type chosen to minimize the
// expected cost among deadline-feasible types.
func MaratheOpt(m cloud.MarketView) replay.Strategy {
	return replay.FixedPlan{
		Label: "Marathe-Opt",
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			train := trainView(m, start)
			var best model.Plan
			bestCost := math.Inf(1)
			for _, it := range train.Catalog() {
				plan, err := marathePlan(train, r, it)
				if err != nil {
					continue
				}
				est := model.Evaluate(plan)
				if est.Time > deadline {
					continue
				}
				if est.Cost < bestCost {
					best, bestCost = plan, est.Cost
				}
			}
			if math.IsInf(bestCost, 1) {
				// No feasible type: fall back to the paper's default.
				return marathePlan(train, r, cloud.CC28XLarge)
			}
			return best, nil
		},
	}
}

func marathePlan(train cloud.MarketView, r *replay.Runner, it cloud.InstanceType) (model.Plan, error) {
	plan := model.Plan{Recovery: model.NewOnDemand(r.Profile, it)}
	for _, zone := range train.Zones() {
		g := model.NewGroup(r.Profile, it, zone, train.Trace(it.Name, zone))
		bid := maratheBid(it)
		plan.Groups = append(plan.Groups, model.GroupPlan{
			Group: g, Bid: bid, Interval: opt.Phi(g, bid),
		})
	}
	if len(plan.Groups) == 0 {
		return plan, fmt.Errorf("baselines: market has no zones")
	}
	return plan, nil
}

// SpotInf bids effectively infinitely on the single cheapest spot market
// (no replication, no checkpoints) — availability bought with money.
func SpotInf(m cloud.MarketView) replay.Strategy {
	return singleSpot(m, "Spot-Inf", func(tr *trace.Trace) float64 {
		return InfiniteBid
	})
}

// SpotAvg bids the historical average price on the single cheapest spot
// market (no replication, no checkpoints).
func SpotAvg(m cloud.MarketView) replay.Strategy {
	return singleSpot(m, "Spot-Avg", func(tr *trace.Trace) float64 {
		return tr.Mean()
	})
}

// singleSpot picks, per run, the (type, zone) whose single-group plan has
// the lowest expected cost under the given bid policy, preferring
// deadline-feasible choices.
func singleSpot(m cloud.MarketView, label string, bidOf func(*trace.Trace) float64) replay.Strategy {
	return replay.FixedPlan{
		Label: label,
		Provider: func(r *replay.Runner, deadline, start float64) (model.Plan, error) {
			train := trainView(m, start)
			od, err := opt.SelectOnDemand(train.Catalog(), r.Profile, deadline, 0)
			if err != nil {
				od = opt.FastestOnDemand(train.Catalog(), r.Profile)
			}
			var best model.Plan
			bestCost := math.Inf(1)
			bestFeasible := false
			for _, key := range train.Keys() {
				it, _ := train.Catalog().ByName(key.Type)
				tr := train.Trace(key.Type, key.Zone)
				g := model.NewGroup(r.Profile, it, key.Zone, tr)
				plan := model.Plan{
					Groups: []model.GroupPlan{{
						Group: g, Bid: bidOf(tr), Interval: float64(g.T),
					}},
					Recovery: od,
				}
				est := model.Evaluate(plan)
				feasible := est.Time <= deadline
				better := est.Cost < bestCost
				switch {
				case feasible && !bestFeasible,
					feasible == bestFeasible && better:
					best, bestCost, bestFeasible = plan, est.Cost, feasible
				}
			}
			if math.IsInf(bestCost, 1) {
				return model.Plan{}, fmt.Errorf("baselines: %s found no market", label)
			}
			return best, nil
		},
	}
}

// SOMPI is the paper's full algorithm: adaptive re-optimization every
// optimization window.
func SOMPI(m cloud.MarketView) replay.Strategy {
	return &opt.Adaptive{Base: opt.Config{Market: m}, History: History}
}

// SOMPIWindow is SOMPI with an explicit optimization window T_m, for the
// Section 5.2 parameter study.
func SOMPIWindow(m cloud.MarketView, window float64) replay.Strategy {
	return &opt.Adaptive{
		Base:    opt.Config{Market: m},
		Window:  window,
		History: History,
		Label:   fmt.Sprintf("SOMPI-Tm%g", window),
	}
}

// WithoutMT is SOMPI without update maintenance: one optimization at
// launch, no re-planning (Section 5.4.2's w/o-MT).
func WithoutMT(m cloud.MarketView) replay.Strategy {
	return &opt.OneShot{Base: opt.Config{Market: m}, History: History}
}

// WithoutRP disables replicated execution: the optimizer may use only one
// circle group (checkpoints still on).
func WithoutRP(m cloud.MarketView) replay.Strategy {
	return &opt.OneShot{
		Base:    opt.Config{Market: m, Kappa: 1},
		History: History,
		Label:   "w/o-RP",
	}
}

// WithoutCK disables checkpointing: groups run bare and any failure loses
// all progress (replication still on).
func WithoutCK(m cloud.MarketView) replay.Strategy {
	return &opt.OneShot{
		Base:    opt.Config{Market: m, DisableCheckpoints: true},
		History: History,
		Label:   "w/o-CK",
	}
}

// AllUnable disables both mechanisms: one group, no checkpoints.
func AllUnable(m cloud.MarketView) replay.Strategy {
	return &opt.OneShot{
		Base:    opt.Config{Market: m, Kappa: 1, DisableCheckpoints: true},
		History: History,
		Label:   "All-Unable",
	}
}
