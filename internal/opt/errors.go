package opt

import "errors"

// Sentinel errors of the v1 optimizer API. Callers branch on them with
// errors.Is; the wrapped messages carry the offending values.
var (
	// ErrInvalidConfig reports a structurally unsound Config: a nil
	// market, a non-positive deadline, κ exceeding the group cap, and so
	// on. It is a caller bug, not an environmental condition.
	ErrInvalidConfig = errors.New("opt: invalid config")

	// ErrDeadlineInfeasible reports that no on-demand fleet — the most
	// reliable resource money can buy — finishes the application within
	// the deadline. The result returned alongside it carries the
	// fastest-fleet fallback plan.
	ErrDeadlineInfeasible = errors.New("opt: deadline infeasible for every on-demand fleet")

	// ErrNoCandidates reports that the candidate circle-group list is
	// unusable: a candidate names an instance type outside the market's
	// catalog or a market with no recorded price history (typically a
	// stale Candidates list).
	ErrNoCandidates = errors.New("opt: no usable candidate circle groups")
)

// ErrNoFeasibleOnDemand is the pre-v1 name of ErrDeadlineInfeasible; the
// two are the same sentinel, so errors.Is works with either.
//
// Deprecated: use ErrDeadlineInfeasible.
var ErrNoFeasibleOnDemand = ErrDeadlineInfeasible
