package opt

import (
	"sompi/internal/model"
)

// WarmBound re-evaluates a previous plan under cfg's current market and
// returns its expected cost as an admissible Config.InitialIncumbent
// seed for the next optimization. The bound is admissible by witness:
// it is the achieved cost of a concrete feasible plan, so the true
// optimum cannot exceed it (when the previous plan's bids are still on
// the current bid grid; if price maxima moved the grid, the seed may
// fall below the new grid's optimum — OptimizeContext detects that and
// re-runs cold, so correctness never depends on it).
//
// ok is false when the previous plan cannot be priced or is no longer
// feasible under cfg — a group's market left the catalog or trace set,
// its deadline-feasible window closed, the re-evaluated completion time
// misses cfg.Deadline, or the all-fail probability exceeds
// cfg.MaxAllFail. Callers then simply run cold.
func WarmBound(cfg Config, prev model.Plan) (cost float64, ok bool) {
	cfg = cfg.withDefaults()
	if cfg.Market == nil || len(prev.Groups) == 0 || cfg.validate() != nil {
		return 0, false
	}
	od, err := selectRelaxed(cfg)
	if err != nil {
		return 0, false
	}
	pgs := make([]*model.PreparedGroup, 0, len(prev.Groups))
	for _, gp := range prev.Groups {
		it, found := cfg.Market.Catalog().ByName(gp.Group.Key.Type)
		if !found {
			return 0, false
		}
		tr, found := cfg.Market.TraceFor(gp.Group.Key)
		if !found {
			return 0, false
		}
		// Rebuild the group against the current market and profile — the
		// residual workload and fresh price history both change the
		// failure distributions — keeping only the bid choice from the
		// previous plan, with its interval re-derived through F = φ(P)
		// exactly as the search would.
		g := model.NewGroup(cfg.Profile, it, gp.Group.Key.Zone, tr)
		if float64(g.T) > cfg.Deadline || gp.Bid <= 0 {
			return 0, false
		}
		interval := float64(g.T)
		if !cfg.DisableCheckpoints {
			interval = Phi(g, gp.Bid)
		}
		pgs = append(pgs, model.Prepare(model.GroupPlan{Group: g, Bid: gp.Bid, Interval: interval}))
	}
	est := model.EvaluatePrepared(pgs, od)
	if est.Time > cfg.Deadline {
		return 0, false
	}
	if cfg.MaxAllFail > 0 && est.PAllFail > cfg.MaxAllFail {
		return 0, false
	}
	return est.Cost, true
}
