package opt

import (
	"context"
	"strings"
	"testing"

	"sompi/internal/app"
	"sompi/internal/obs"
)

func TestExplainTrail(t *testing.T) {
	m := testMarket(7)
	p := app.BT()
	cfg := smallConfig(m, p, 60)

	plain, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil {
		t.Fatal("Explain populated without Config.Explain")
	}

	res, err := OptimizeContext(context.Background(), cfg, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("Explain missing with Config.Explain set")
	}

	// The trail must not perturb the plan. (Groups are compared by
	// key/bid/interval, not DeepEqual: the *Group pointers carry lazily
	// filled per-bid caches whose state depends on evaluation order.)
	if res.Est != plain.Est || len(res.Plan.Groups) != len(plain.Plan.Groups) {
		t.Fatalf("explain changed the plan:\nplain %+v\nexplain %+v", plain.Est, res.Est)
	}
	for i := range res.Plan.Groups {
		a, b := res.Plan.Groups[i], plain.Plan.Groups[i]
		if a.Group.Key != b.Group.Key || a.Bid != b.Bid || a.Interval != b.Interval {
			t.Fatalf("group %d diverged: %+v vs %+v", i, a, b)
		}
	}

	if ex.Kappa != 2 || ex.GridLevels != 4 || ex.Workers < 1 {
		t.Fatalf("effective knobs wrong: %+v", ex)
	}
	if ex.BaselineCost <= 0 {
		t.Fatalf("baseline cost %v", ex.BaselineCost)
	}
	if ex.Evals != res.Evals || ex.Pruned != res.Pruned {
		t.Fatalf("counters diverge: trail %d/%d result %d/%d", ex.Evals, ex.Pruned, res.Evals, res.Pruned)
	}
	if ex.TotalNs <= 0 {
		t.Fatalf("total duration %d", ex.TotalNs)
	}

	// Every (type, zone) market gets a decision; the generous deadline
	// keeps the 4 cheapest by standalone cost (MaxGroups=4), so the rest
	// must carry a dominated/rejected reason.
	if want := len(m.Keys()); len(ex.Candidates) != want {
		t.Fatalf("%d candidate decisions, want %d", len(ex.Candidates), want)
	}
	kept, dropped := 0, 0
	for _, d := range ex.Candidates {
		if d.Reason == "" || d.Market == "" {
			t.Fatalf("decision missing market/reason: %+v", d)
		}
		if d.Kept {
			kept++
		} else {
			dropped++
		}
		if d.Selected && !d.Kept {
			t.Fatalf("selected candidate was not kept: %+v", d)
		}
	}
	if kept != cfg.MaxGroups {
		t.Fatalf("%d kept, want MaxGroups=%d", kept, cfg.MaxGroups)
	}
	if dropped == 0 {
		t.Fatal("expected dominated candidates with 12 markets and MaxGroups=4")
	}

	// Selected mirrors the winning plan's groups.
	if len(ex.Selected) != len(res.Plan.Groups) {
		t.Fatalf("selected %v vs %d plan groups", ex.Selected, len(res.Plan.Groups))
	}
	for i, gp := range res.Plan.Groups {
		if ex.Selected[i] != gp.Group.Key.String() {
			t.Fatalf("selected[%d] = %q, want %q", i, ex.Selected[i], gp.Group.Key.String())
		}
	}
	selectedMarked := 0
	for _, d := range ex.Candidates {
		if d.Selected {
			selectedMarked++
		}
	}
	if selectedMarked != len(res.Plan.Groups) {
		t.Fatalf("%d candidates marked selected, want %d", selectedMarked, len(res.Plan.Groups))
	}

	// Stage order: the pipeline always runs these four in sequence.
	var names []string
	for _, st := range ex.Stages {
		names = append(names, st.Name)
		if st.DurationNs < 0 {
			t.Fatalf("stage %s negative duration", st.Name)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"select_on_demand", "enumerate_candidates", "bid_grid", "rank_candidates", "subset_search"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stages %v missing %q", names, want)
		}
	}
}

func TestExplainDeadlineRejections(t *testing.T) {
	m := testMarket(3)
	p := app.BT()
	// A deadline between the fastest and slowest standalone times forces
	// at least one deadline rejection.
	fast := FastestOnDemand(m.Catalog(), p)
	cfg := smallConfig(m, p, fast.T*2)
	res, err := OptimizeContext(context.Background(), cfg, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	sawDeadline := false
	for _, d := range res.Explain.Candidates {
		if !d.Kept && strings.Contains(d.Reason, "deadline") {
			sawDeadline = true
			if d.StandaloneHours <= cfg.Deadline {
				t.Fatalf("deadline rejection with feasible standalone time: %+v", d)
			}
		}
	}
	if !sawDeadline {
		t.Skip("no deadline-infeasible market at this seed; trail still valid")
	}
}

func TestOptimizeSpans(t *testing.T) {
	m := testMarket(5)
	cfg := smallConfig(m, app.BT(), 60)
	c := obs.NewCollector(256)
	ctx, root := obs.StartRoot(context.Background(), c, "http.plan", "req-test")
	if _, err := OptimizeContext(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := c.Spans("req-test", 0)
	byName := map[string]int{}
	for _, sd := range spans {
		byName[sd.Name]++
		if sd.TraceID != "req-test" {
			t.Fatalf("span %s trace %q", sd.Name, sd.TraceID)
		}
	}
	for _, want := range []string{"opt.optimize", "opt.select_on_demand", "opt.bid_grid", "opt.subset_search", "opt.search.worker"} {
		if byName[want] == 0 {
			t.Fatalf("no %q span recorded; got %v", want, byName)
		}
	}
}
