package opt

import (
	"context"
	"sync"
	"testing"

	"sompi/internal/app"
	"sompi/internal/model"
)

// TestWorkUnitsCoverSpaceExactly: the balanced units must partition the
// subset space — every leaf in exactly one unit. The exhaustive serial
// search's Evals count is the ground truth: 1 baseline evaluation plus
// one per leaf, which must equal buildUnits' own size accounting.
func TestWorkUnitsCoverSpaceExactly(t *testing.T) {
	m := testMarket(7)
	cfg := smallConfig(m, app.BT(), 60)
	cfg.Workers = 1
	cfg.DisablePruning = true
	cfg.Candidates = m.Keys()[:4] // = MaxGroups: no ranking evals
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the unit set the search used and sum its size estimates.
	groups, _, err := buildGroups(cfg.withDefaults(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gridLen := make([]int, len(groups))
	minSpot := make([]float64, len(groups))
	for i, g := range groups {
		gridLen[i] = len(BidGrid(g, cfg.withDefaults().GridLevels))
	}
	kappa := cfg.Kappa
	if kappa > len(groups) {
		kappa = len(groups)
	}
	units := buildUnits(gridLen, minSpot, kappa)
	total := 0.0
	for _, u := range units {
		total += u.est
	}
	if got := float64(res.Evals - 1); got != total {
		t.Fatalf("units account for %v leaves, exhaustive search evaluated %v", total, got)
	}
}

// TestScalingSmoke is the CI fast-path: the unit splitter must produce a
// balanced decomposition (the old first-index partitioning put the
// majority of the space in partition 0), and a 2-worker search must
// return the byte-identical plan of a 1-worker search on a small market.
func TestScalingSmoke(t *testing.T) {
	// The bench shape: 12 markets x 6 grid points, kappa 4.
	gridLen := make([]int, 12)
	minSpot := make([]float64, 12)
	for i := range gridLen {
		gridLen[i] = 6
	}
	units := buildUnits(gridLen, minSpot, 4)
	if len(units) < 2*len(gridLen) {
		t.Fatalf("only %d units for 12 groups: splitter did not subdivide", len(units))
	}
	total, largest := 0.0, 0.0
	for _, u := range units {
		total += u.est
		if u.est > largest {
			largest = u.est
		}
	}
	// First-index partition 0 holds ~46% of this space; balanced units
	// must stay far below that.
	if largest > 0.10*total {
		t.Fatalf("largest unit holds %.1f%% of the space, want <= 10%%", 100*largest/total)
	}

	m := testMarket(3)
	cfg := smallConfig(m, app.BT(), 60)
	cfg.Workers = 1
	serial, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	par, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(serial) != fingerprint(par) {
		t.Fatalf("2-worker plan differs from serial:\n%s\nvs\n%s", fingerprint(par), fingerprint(serial))
	}
}

// TestWarmDeltaByteIdentical is the seed-swept property test: after the
// market ticks, a warm-started (InitialIncumbent from the previous
// plan) and delta-evaluated (ReuseCache from the previous optimization)
// search must return plans byte-identical to a cold Workers: 1 search —
// at every worker count — while doing strictly less evaluation work.
func TestWarmDeltaByteIdentical(t *testing.T) {
	ctx := context.Background()
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5
	totalSaved := 0
	sawWarm := false
	for _, seed := range []uint64{1, 2, 3, 11, 42} {
		m := testMarket(seed)
		cache := NewReuseCache()
		cfg0 := Config{Profile: p, Market: m.Snapshot(), Deadline: deadline, Workers: 1, Reuse: cache}
		res0, err := OptimizeContext(ctx, cfg0)
		if err != nil {
			t.Fatal(err)
		}

		// Tick two of the twelve shards; the other ten keep their version.
		keys := m.Keys()
		if _, err := m.Append(keys[0], []float64{0.21, 0.24, 0.22}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Append(keys[7], []float64{0.33}); err != nil {
			t.Fatal(err)
		}

		coldCfg := Config{Profile: p, Market: m.Snapshot(), Deadline: deadline, Workers: 1}
		cold, err := OptimizeContext(ctx, coldCfg)
		if err != nil {
			t.Fatal(err)
		}

		warmCfg := coldCfg
		warmCfg.Reuse = cache
		if hint, ok := WarmBound(warmCfg, res0.Plan); ok {
			warmCfg.InitialIncumbent = hint
			sawWarm = true
		}
		for _, workers := range []int{1, 3} {
			warmCfg.Workers = workers
			warm, err := OptimizeContext(ctx, warmCfg)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(warm) != fingerprint(cold) {
				t.Fatalf("seed %d workers %d: warm plan differs from cold:\n%s\nvs\n%s",
					seed, workers, fingerprint(warm), fingerprint(cold))
			}
			if workers == 1 && !warm.WarmRetried && warm.Evals > cold.Evals {
				// Serial warm search visits a subset of the cold visit set
				// (the memo and the tighter incumbent only remove work).
				t.Fatalf("seed %d: warm search evaluated more than cold: %d > %d", seed, warm.Evals, cold.Evals)
			}
			totalSaved += warm.SavedEvals
		}
	}
	if !sawWarm {
		t.Fatal("WarmBound never produced a seed across the sweep")
	}
	if totalSaved == 0 {
		t.Fatal("reuse cache never saved an evaluation across the sweep")
	}
}

// TestInadmissibleIncumbentRetriesCold: a hint below the true optimum
// must be detected (nothing achieves it) and answered with a cold
// retry, preserving byte-identical plans.
func TestInadmissibleIncumbentRetriesCold(t *testing.T) {
	m := testMarket(11)
	cfg := smallConfig(m, app.BT(), 60)
	cfg.Workers = 1
	cold, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Plan.Groups) == 0 {
		t.Skip("pure on-demand optimum; no spot cost to undercut")
	}

	bad := cfg
	bad.InitialIncumbent = cold.Est.Cost * 0.5
	warm, err := Optimize(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmRetried {
		t.Fatalf("inadmissible hint %v (optimum %v) not retried", bad.InitialIncumbent, cold.Est.Cost)
	}
	if fingerprint(warm) != fingerprint(cold) {
		t.Fatalf("retried plan differs from cold:\n%s\nvs\n%s", fingerprint(warm), fingerprint(cold))
	}

	// An admissible hint — the optimum itself — must not trigger a retry.
	good := cfg
	good.InitialIncumbent = cold.Est.Cost
	warm, err = Optimize(good)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmRetried {
		t.Fatal("exact-optimum hint spuriously retried")
	}
	if fingerprint(warm) != fingerprint(cold) {
		t.Fatalf("warm plan differs from cold:\n%s\nvs\n%s", fingerprint(warm), fingerprint(cold))
	}
}

// TestSerialCountersDeterministic: at Workers: 1, Evals and Pruned are
// part of the API contract — two identical calls return identical
// counters, with and without a warm-start seed.
func TestSerialCountersDeterministic(t *testing.T) {
	m := testMarket(42)
	base := smallConfig(m, app.BT(), 60)
	base.Workers = 1
	a, err := Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evals != b.Evals || a.Pruned != b.Pruned || a.SavedEvals != b.SavedEvals {
		t.Fatalf("serial counters drifted: (%d,%d,%d) vs (%d,%d,%d)",
			a.Evals, a.Pruned, a.SavedEvals, b.Evals, b.Pruned, b.SavedEvals)
	}

	warm := base
	warm.InitialIncumbent = 50
	a, err = Optimize(warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Optimize(warm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evals != b.Evals || a.Pruned != b.Pruned || a.WarmRetried != b.WarmRetried {
		t.Fatalf("warm serial counters drifted: (%d,%d,%v) vs (%d,%d,%v)",
			a.Evals, a.Pruned, a.WarmRetried, b.Evals, b.Pruned, b.WarmRetried)
	}
}

// TestConcurrentWarmReoptsShareCache: many concurrent warm-started
// re-optimizations sharing one MarketView and one ReuseCache — the
// serve layer's T_m-boundary regime — must all return the reference
// plan. Run under -race this also proves the cache's synchronization.
func TestConcurrentWarmReoptsShareCache(t *testing.T) {
	ctx := context.Background()
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5
	m := testMarket(5)
	cache := NewReuseCache()
	view := m.Snapshot()

	prime := Config{Profile: p, Market: view, Deadline: deadline, Workers: 1, Reuse: cache}
	res0, err := OptimizeContext(ctx, prime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(m.Keys()[3], []float64{0.4, 0.38}); err != nil {
		t.Fatal(err)
	}
	shared := m.Snapshot()

	refCfg := Config{Profile: p, Market: shared, Deadline: deadline, Workers: 1}
	ref, err := OptimizeContext(ctx, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	plans := make([]string, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := refCfg
			cfg.Reuse = cache
			cfg.Workers = 2
			if hint, ok := WarmBound(cfg, res0.Plan); ok {
				cfg.InitialIncumbent = hint
			}
			res, err := OptimizeContext(ctx, cfg)
			if err != nil {
				errs <- err
				return
			}
			plans[i] = fingerprint(res)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, got := range plans {
		if got != want {
			t.Fatalf("concurrent re-opt %d diverged:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestWarmBoundIsAchievedCost: the seed WarmBound returns must equal the
// search's own evaluation of the same plan — it is a cost the search can
// achieve, which is what makes it admissible.
func TestWarmBoundIsAchievedCost(t *testing.T) {
	m := testMarket(3)
	cfg := smallConfig(m, app.BT(), 60)
	cfg.Workers = 1
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Groups) == 0 {
		t.Skip("pure on-demand optimum")
	}
	hint, ok := WarmBound(cfg, res.Plan)
	if !ok {
		t.Fatal("WarmBound rejected the optimizer's own plan")
	}
	if hint != res.Est.Cost {
		t.Fatalf("WarmBound %v != optimizer's cost %v", hint, res.Est.Cost)
	}

	// A plan whose market vanished from the candidate view is rejected.
	var none model.Plan
	if _, ok := WarmBound(cfg, none); ok {
		t.Fatal("WarmBound accepted an empty plan")
	}
}
