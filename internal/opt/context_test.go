package opt

import (
	"context"
	"errors"
	"testing"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
)

// fullSearchConfig is a deliberately large search (exhaustive, serial):
// ~10^5 evaluations, long enough that a mid-flight cancellation lands
// while workers are still descending the bid grids.
func fullSearchConfig(m *cloud.Market) Config {
	return Config{
		Profile:        app.BT(),
		Market:         m,
		Deadline:       200,
		Workers:        1,
		DisablePruning: true,
	}
}

func TestOptimizeContextMatchesOptimize(t *testing.T) {
	m := testMarket(5)
	cfg := smallConfig(m, app.BT(), 60)
	want, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Est != want.Est || len(got.Plan.Groups) != len(want.Plan.Groups) {
		t.Fatalf("OptimizeContext diverged from Optimize: %+v vs %+v", got.Est, want.Est)
	}
}

func TestOptionsOverrideConfig(t *testing.T) {
	m := testMarket(5)
	cfg := smallConfig(m, app.BT(), 60)
	res, err := OptimizeContext(context.Background(), cfg,
		WithKappa(1), WithWorkers(1), WithGridLevels(2), WithMaxGroups(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Groups) > 1 {
		t.Fatalf("WithKappa(1) produced %d groups", len(res.Plan.Groups))
	}

	// An option that invalidates the config surfaces as ErrInvalidConfig.
	if _, err := OptimizeContext(context.Background(), cfg, WithKappa(9)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("kappa 9 > max groups 8 returned %v, want ErrInvalidConfig", err)
	}
}

func TestOptimizeContextCancellationStopsSearchEarly(t *testing.T) {
	m := testMarket(7)
	full, err := OptimizeContext(context.Background(), fullSearchConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if full.Evals < 10_000 {
		t.Fatalf("full search only evaluated %d plans; too small to observe cancellation", full.Evals)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	partial, err := OptimizeContext(ctx, fullSearchConfig(m))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}
	// The Evals counter is the proof of early abort: the cancelled search
	// must have evaluated strictly fewer plans than the full one. The 5ms
	// fuse is orders of magnitude shorter than the full search even under
	// the race detector, so equality would mean cancellation was ignored.
	if partial.Evals >= full.Evals {
		t.Fatalf("cancelled search ran to completion: %d evals (full search: %d)", partial.Evals, full.Evals)
	}
	t.Logf("full search %d evals; cancelled after %d", full.Evals, partial.Evals)
}

func TestOptimizeContextPreCancelled(t *testing.T) {
	m := testMarket(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeContext(ctx, fullSearchConfig(m)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context returned %v, want context.Canceled", err)
	}
}

func TestConfigValidation(t *testing.T) {
	m := testMarket(5)
	base := smallConfig(m, app.BT(), 60)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil market", func(c *Config) { c.Market = nil }},
		{"negative deadline", func(c *Config) { c.Deadline = -1 }},
		{"zero deadline", func(c *Config) { c.Deadline = 0 }},
		{"slack >= 1", func(c *Config) { c.Slack = 1.5 }},
		{"negative kappa", func(c *Config) { c.Kappa = -1 }},
		{"negative grid levels", func(c *Config) { c.GridLevels = -2 }},
		{"kappa over max groups", func(c *Config) { c.Kappa = 6; c.MaxGroups = 4 }},
		{"max-all-fail over 1", func(c *Config) { c.MaxAllFail = 1.5 }},
		{"negative workers", func(c *Config) { c.Workers = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Optimize(cfg); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("got %v, want ErrInvalidConfig", err)
			}
		})
	}
}

func TestSentinelErrorsAreDistinct(t *testing.T) {
	if errors.Is(ErrInvalidConfig, ErrDeadlineInfeasible) || errors.Is(ErrNoCandidates, ErrInvalidConfig) {
		t.Fatal("sentinels must be distinct")
	}
	// The deprecated alias remains the same sentinel.
	if !errors.Is(ErrNoFeasibleOnDemand, ErrDeadlineInfeasible) {
		t.Fatal("ErrNoFeasibleOnDemand must alias ErrDeadlineInfeasible")
	}
}

func TestBuildGroupsReturnsErrNoCandidates(t *testing.T) {
	m := testMarket(5)
	cfg := smallConfig(m, app.BT(), 60)
	cfg.Candidates = []cloud.MarketKey{{Type: "no-such-type", Zone: "us-east-1a"}}
	if _, err := Optimize(cfg); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("unknown candidate type returned %v, want ErrNoCandidates", err)
	}
	cfg.Candidates = []cloud.MarketKey{{Type: cloud.M1Small.Name, Zone: "nowhere-9z"}}
	if _, err := Optimize(cfg); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("unknown candidate zone returned %v, want ErrNoCandidates", err)
	}
}
