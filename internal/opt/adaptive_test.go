package opt

import (
	"math"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/replay"
	"sompi/internal/trace"
)

// quietTraces builds per-market traces whose prices never exceed a
// fraction of on-demand, so spot plans always survive.
func quietTraces(hours int) map[cloud.MarketKey]*trace.Trace {
	traces := map[cloud.MarketKey]*trace.Trace{}
	for _, it := range cloud.DefaultCatalog() {
		for _, z := range cloud.DefaultZones() {
			p := make([]float64, hours*12)
			for i := range p {
				p[i] = it.OnDemand * 0.3
			}
			traces[cloud.MarketKey{Type: it.Name, Zone: z}] = trace.New(trace.DefaultStep, p)
		}
	}
	return traces
}

// quietMarket wraps quietTraces in a market.
func quietMarket(hours int) *cloud.Market {
	return cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), quietTraces(hours))
}

// spikyMarket is quiet except every market spikes far above on-demand in
// [at, at+dur).
func spikyMarket(hours int, at, dur float64) *cloud.Market {
	traces := quietTraces(hours)
	for k, tr := range traces {
		it, _ := cloud.DefaultCatalog().ByName(k.Type)
		for i := range tr.Prices {
			if h := float64(i) * tr.Step; h >= at && h < at+dur {
				tr.Prices[i] = it.OnDemand * 50
			}
		}
	}
	return cloud.NewMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), traces)
}

func TestAdaptiveCompletesOnQuietMarket(t *testing.T) {
	m := quietMarket(600)
	p := app.BT()
	r := &replay.Runner{Market: m, Profile: p}
	dl := FastestOnDemand(nil, p).T * 1.5
	s := &Adaptive{Base: Config{Market: m, Kappa: 1, GridLevels: 3, MaxGroups: 3}}
	o, err := s.Run(r, dl, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Completed {
		t.Fatal("adaptive run did not complete")
	}
	if o.Hours > dl {
		t.Errorf("missed deadline: %v > %v", o.Hours, dl)
	}
	// On a quiet market the whole run stays on spot at ~0.3x on-demand.
	base := FastestOnDemand(nil, p).FullCost()
	if o.Cost >= base {
		t.Errorf("cost $%.0f not below baseline $%.0f on a quiet market", o.Cost, base)
	}
}

func TestAdaptiveSurvivesMidRunSpike(t *testing.T) {
	// A global spike 6 hours in kills any group; the adaptive loop must
	// still finish, recovering through checkpoints/on-demand.
	m := spikyMarket(600, 206, 3)
	p := app.BT()
	r := &replay.Runner{Market: m, Profile: p}
	dl := FastestOnDemand(nil, p).T * 1.6
	s := &Adaptive{Base: Config{Market: m, Kappa: 1, GridLevels: 3, MaxGroups: 3}}
	o, err := s.Run(r, dl, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Completed {
		t.Fatal("adaptive run did not complete after the spike")
	}
}

func TestAdaptiveImpossibleDeadlineBestEffort(t *testing.T) {
	m := quietMarket(400)
	p := app.BT()
	r := &replay.Runner{Market: m, Profile: p}
	s := &Adaptive{Base: Config{Market: m, Kappa: 1, GridLevels: 3, MaxGroups: 3}}
	// One hour deadline: impossible; the strategy must still finish the
	// application (best effort on the fastest fleet).
	o, err := s.Run(r, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Completed {
		t.Fatal("best-effort run did not complete")
	}
	fast := FastestOnDemand(nil, p)
	if o.Hours < fast.T*0.9 {
		t.Errorf("completed impossibly fast: %vh", o.Hours)
	}
}

func TestAdaptiveNameAndLabel(t *testing.T) {
	if (&Adaptive{}).Name() != "SOMPI" {
		t.Error("default name")
	}
	if (&Adaptive{Label: "X"}).Name() != "X" {
		t.Error("label override")
	}
	if (&OneShot{}).Name() != "w/o-MT" {
		t.Error("one-shot default name")
	}
}

func TestOneShotMatchesFixedReplay(t *testing.T) {
	// On a quiet market the one-shot plan completes on spot; its cost
	// must equal replaying the same plan directly.
	m := quietMarket(600)
	p := app.BT()
	r := &replay.Runner{Market: m, Profile: p}
	dl := FastestOnDemand(nil, p).T * 1.5
	s := &OneShot{Base: Config{Market: m, Kappa: 1, GridLevels: 3, MaxGroups: 3}}
	o, err := s.Run(r, dl, 200)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Profile: p, Market: m.Window(200-96, 96), Deadline: dl,
		Kappa: 1, GridLevels: 3, MaxGroups: 3}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := r.RunToCompletion(res.Plan, 200)
	if math.Abs(o.Cost-direct.Cost) > 1e-6 {
		t.Errorf("one-shot $%v vs direct replay $%v", o.Cost, direct.Cost)
	}
}

func TestAdaptiveCheaperOrEqualOneShotOnAverage(t *testing.T) {
	// Update maintenance should not hurt: across a few replays of the
	// synthetic market, adaptive SOMPI's mean cost is at or below the
	// one-shot's (the paper's w/o-MT comparison, ~15% gap).
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*20, 21)
	p := app.BT()
	r := &replay.Runner{Market: m, Profile: p}
	dl := FastestOnDemand(nil, p).T * 1.5
	cfgBase := Config{Market: m}
	ad := replay.MonteCarlo(&Adaptive{Base: cfgBase}, r, replay.MCConfig{Deadline: dl, Runs: 6, Seed: 3})
	os := replay.MonteCarlo(&OneShot{Base: cfgBase}, r, replay.MCConfig{Deadline: dl, Runs: 6, Seed: 3})
	if ad.Cost.Mean() > os.Cost.Mean()*1.1 {
		t.Errorf("adaptive $%.0f clearly worse than one-shot $%.0f",
			ad.Cost.Mean(), os.Cost.Mean())
	}
}
