package opt

import (
	"math"
	"sync"
	"sync/atomic"

	"sompi/internal/cloud"
	"sompi/internal/model"
)

// ReuseCache carries prepared-group state and evaluated subset costs
// across optimizations of the same market. The sharded market's per-
// (type, AZ) version vector makes staleness exact: a candidate group is
// fully determined by its shard's trace content — identified by (shard
// version, window bounds) — plus the scalar group parameters (T, M, O,
// R, grid levels, checkpoint mode), so when none of those changed since
// the last optimization, the group's failure distributions, bid-grid
// PreparedGroups, spot-cost floor and standalone ranking cost are all
// bit-identical and can be reused instead of re-derived. At a T_m
// re-optimization where one shard ticked and eleven did not, that skips
// eleven twelfths of the Prewarm/Prepare work and — through the leaf
// cost cache — every cost-model evaluation of subsets built purely from
// unchanged shards.
//
// Reuse never changes the returned plan: a cache hit substitutes values
// that are bit-identical to what a cold computation would produce (the
// determinism property the warm-vs-cold tests assert byte-for-byte).
// It does change Result.Evals — skipped evaluations are reported in
// Result.SavedEvals instead.
//
// A ReuseCache is safe for concurrent use by multiple optimizations.
type ReuseCache struct {
	mu     sync.Mutex
	nextID uint32
	groups map[groupSlot]*reuseEntry

	// leaves is the subset-cost memo: a copy-on-write map swapped
	// atomically so the search's hot path reads it lock-free. Workers
	// buffer their insertions locally and merge once per optimization.
	leaves atomic.Pointer[map[leafKey]model.Estimate]
}

// maxLeafEntries bounds the leaf memo; when a merge would exceed it the
// memo restarts from the incoming batch (the most recent market state),
// which is the set the next re-optimization will actually hit.
const maxLeafEntries = 1 << 17

// NewReuseCache returns an empty cache, ready to be shared across
// optimizations (Config.Reuse).
func NewReuseCache() *ReuseCache {
	return &ReuseCache{groups: make(map[groupSlot]*reuseEntry)}
}

// groupSlot names one cached candidate: the market shard and the
// profile it was sized for. One slot holds one entry; a state mismatch
// (new shard version, different window, different knobs) overwrites it.
type groupSlot struct {
	key     cloud.MarketKey
	profile string
}

// groupState fingerprints everything a candidate group's prepared state
// depends on. Float parameters are stored as bits so comparison is
// exact equality, never tolerance.
type groupState struct {
	version          uint64
	winStart, winDur uint64
	m, t             int
	o, r             uint64
	gridLevels       int
	noCheckpoints    bool
}

// odKey fingerprints the on-demand fleet an evaluation was scored
// against: its execution time and hourly rate are the only fields the
// cost model reads.
type odKey struct {
	t, rate uint64
}

func odKeyFor(od model.OnDemand) odKey {
	return odKey{t: math.Float64bits(od.T), rate: math.Float64bits(od.Rate())}
}

// reuseEntry is one candidate group's cached derivation. Immutable
// after construction except standalone, which is guarded by the cache
// mutex.
type reuseEntry struct {
	id       uint32
	state    groupState
	g        *model.Group
	prepared []*model.PreparedGroup
	minSpot  float64

	// standalone memoizes the ranking stage's best single-group cost per
	// on-demand fleet (the fleet changes when the residual profile or
	// deadline moves the Formula 12–13 selection).
	standalone map[odKey]float64
}

// lookupGroup returns the entry for slot if its state matches exactly.
func (c *ReuseCache) lookupGroup(slot groupSlot, st groupState) (*reuseEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.groups[slot]
	if !ok || e.state != st {
		return nil, false
	}
	return e, true
}

// storeGroup registers a freshly derived entry, assigning its leaf-key
// id. Concurrent optimizations may race to fill the same slot; the
// states are identical by construction, so either winning is fine — but
// each gets a distinct id, so their leaf keys never collide.
func (c *ReuseCache) storeGroup(slot groupSlot, e *reuseEntry) *reuseEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.groups[slot]; ok && cur.state == e.state {
		return cur
	}
	c.nextID++
	e.id = c.nextID
	c.groups[slot] = e
	return e
}

// standaloneCost returns the memoized ranking cost of e against od.
func (c *ReuseCache) standaloneCost(e *reuseEntry, k odKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := e.standalone[k]
	return v, ok
}

// putStandalone memoizes a ranking cost.
func (c *ReuseCache) putStandalone(e *reuseEntry, k odKey, cost float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.standalone == nil {
		e.standalone = make(map[odKey]float64, 2)
	}
	e.standalone[k] = cost
}

// leafKey identifies one evaluated leaf: the on-demand fleet plus, per
// subset member in enumeration order, the group's entry id and its
// bid-grid index packed as id<<leafBidBits | bidIdx. Entry ids are
// unique per (shard state) registration, so two leaves collide only
// when they would evaluate to the identical Estimate.
type leafKey struct {
	od odKey
	n  uint8
	e  [maxLeafSubset]uint32
}

const (
	// maxLeafSubset bounds the memoizable subset size (κ beyond it just
	// skips the memo).
	maxLeafSubset = 8
	// leafBidBits is how many low bits of a packed member hold the bid
	// index; grids longer than 1<<leafBidBits disable the memo.
	leafBidBits = 5
	// maxLeafID keeps id<<leafBidBits from overflowing uint32.
	maxLeafID = 1 << (32 - leafBidBits)
)

// leafSnapshot returns the current memo map for lock-free reads (nil
// when empty).
func (c *ReuseCache) leafSnapshot() map[leafKey]model.Estimate {
	if m := c.leaves.Load(); m != nil {
		return *m
	}
	return nil
}

// mergeLeaves folds one optimization's evaluated leaves into the memo
// with a copy-on-write swap.
func (c *ReuseCache) mergeLeaves(batch map[leafKey]model.Estimate) {
	if len(batch) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur map[leafKey]model.Estimate
	if p := c.leaves.Load(); p != nil {
		cur = *p
	}
	next := make(map[leafKey]model.Estimate, len(cur)+len(batch))
	if len(cur)+len(batch) <= maxLeafEntries {
		for k, v := range cur {
			next[k] = v
		}
	}
	for k, v := range batch {
		next[k] = v
	}
	c.leaves.Store(&next)
}

// reuseBinding is the per-optimization view of the cache: resolved once
// at the start of OptimizeContext from the market's window bounds and
// version vector. nil when reuse is disabled or the view cannot state
// its bounds exactly.
type reuseBinding struct {
	cache            *ReuseCache
	vv               cloud.VersionVector
	winStart, winDur uint64
}

// bindReuse resolves cfg's reuse cache against its market view. Views
// without exact window bounds (or without the optional WindowBounds
// method at all) silently run cold: correctness never depends on reuse.
func bindReuse(cfg Config) *reuseBinding {
	if cfg.Reuse == nil {
		return nil
	}
	wb, ok := cfg.Market.(interface{ WindowBounds() (float64, float64, bool) })
	if !ok {
		return nil
	}
	start, dur, exact := wb.WindowBounds()
	if !exact {
		return nil
	}
	return &reuseBinding{
		cache:    cfg.Reuse,
		vv:       cfg.Market.VersionVector(),
		winStart: math.Float64bits(start),
		winDur:   math.Float64bits(dur),
	}
}

// stateFor fingerprints a freshly built group under this binding.
func (b *reuseBinding) stateFor(cfg Config, key cloud.MarketKey, g *model.Group) groupState {
	return groupState{
		version:       b.vv[key],
		winStart:      b.winStart,
		winDur:        b.winDur,
		m:             g.M,
		t:             g.T,
		o:             math.Float64bits(g.O),
		r:             math.Float64bits(g.R),
		gridLevels:    cfg.GridLevels,
		noCheckpoints: cfg.DisableCheckpoints,
	}
}
