package opt

import (
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
)

// BenchmarkOptimize measures one full SOMPI optimization at the paper's
// default parameters (κ=4, 6-level logarithmic grid, 12 candidate
// markets pruned to 8) — the per-window cost of the adaptive algorithm,
// which the paper bounds at <1% of execution time.
func BenchmarkOptimize(b *testing.B) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, 42)
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(Config{Profile: p, Market: m, Deadline: deadline}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeSearch compares the search configurations the
// regression harness (cmd/bench) tracks: the exhaustive serial search
// (the pre-parallel baseline), branch-and-bound alone, and
// branch-and-bound on the full worker pool. All three return the same
// plan; only the work to find it differs.
func BenchmarkOptimizeSearch(b *testing.B) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, 42)
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"serial-exhaustive", Config{Workers: 1, DisablePruning: true}},
		{"serial-pruned", Config{Workers: 1}},
		{"parallel-pruned", Config{Workers: 0}},
	} {
		cfg := bc.cfg
		cfg.Profile, cfg.Market, cfg.Deadline = p, m, deadline
		b.Run(bc.name, func(b *testing.B) {
			var res Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = Optimize(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Evals), "evals/op")
			b.ReportMetric(float64(res.Pruned), "pruned/op")
		})
	}
}

// BenchmarkOptimizeKappa sweeps κ, the paper's Section 5.2 overhead
// study, as a benchmark.
func BenchmarkOptimizeKappa(b *testing.B) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, 42)
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5
	for _, kappa := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "k1", 2: "k2", 3: "k3", 4: "k4"}[kappa], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(Config{
					Profile: p, Market: m, Deadline: deadline, Kappa: kappa,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhi measures the F = φ(P) interval computation (cached MTTF).
func BenchmarkPhi(b *testing.B) {
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, 42)
	g := model.NewGroup(app.BT(), cloud.M1Medium, cloud.ZoneA,
		m.Trace(cloud.M1Medium.Name, cloud.ZoneA))
	grid := BidGrid(g, 6)
	for _, bid := range grid {
		Phi(g, bid) // warm MTTF cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Phi(g, grid[i%len(grid)])
	}
}
