package opt

import (
	"fmt"
	"strings"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/trace"
)

// fingerprint renders a plan and estimate byte-for-byte so equality
// between search configurations can be asserted exactly, not within a
// tolerance.
func fingerprint(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%x time=%x spot=%x od=%x pfail=%x emin=%x\n",
		res.Est.Cost, res.Est.Time, res.Est.CostSpot, res.Est.CostOD,
		res.Est.PAllFail, res.Est.EMinRatio)
	for _, gp := range res.Plan.Groups {
		fmt.Fprintf(&b, "group=%s m=%d bid=%x interval=%x\n",
			gp.Group.Key, gp.Group.M, gp.Bid, gp.Interval)
	}
	fmt.Fprintf(&b, "recovery=%s m=%d t=%x\n",
		res.Plan.Recovery.Instance.Name, res.Plan.Recovery.M, res.Plan.Recovery.T)
	return b.String()
}

// TestOptimizeParallelDeterministic is the tentpole guarantee: the
// parallel search returns a plan and estimate byte-identical to the
// serial path at every worker count, with and without pruning.
func TestOptimizeParallelDeterministic(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		m := testMarket(seed)
		for _, p := range []app.Profile{app.BT(), app.FT()} {
			deadline := FastestOnDemand(nil, p).T * 1.5
			base := Config{Profile: p, Market: m, Deadline: deadline}

			ref := base
			ref.Workers = 1
			ref.DisablePruning = true
			want, err := Optimize(ref)
			if err != nil {
				t.Fatal(err)
			}
			wantFP := fingerprint(want)

			for _, workers := range []int{1, 2, 8} {
				for _, pruned := range []bool{false, true} {
					cfg := base
					cfg.Workers = workers
					cfg.DisablePruning = !pruned
					got, err := Optimize(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if fp := fingerprint(got); fp != wantFP {
						t.Errorf("seed %d %s workers=%d pruning=%v diverged from serial:\ngot:\n%s\nwant:\n%s",
							seed, p.Name, workers, pruned, fp, wantFP)
					}
				}
			}
		}
	}
}

// TestOptimizePruningCounts asserts branch-and-bound actually fires at
// the paper's default parameters and that disabling it reports zero.
func TestOptimizePruningCounts(t *testing.T) {
	m := testMarket(42)
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5

	cfg := Config{Profile: p, Market: m, Deadline: deadline, Workers: 1}
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Error("branch-and-bound never pruned at default parameters")
	}

	cfg.DisablePruning = true
	full, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Pruned != 0 {
		t.Errorf("DisablePruning still reported %d pruned evals", full.Pruned)
	}
	if res.Evals+res.Pruned > full.Evals {
		t.Errorf("evals %d + pruned %d exceed the exhaustive count %d",
			res.Evals, res.Pruned, full.Evals)
	}
	if res.Evals >= full.Evals {
		t.Errorf("pruning did not reduce evaluations: %d vs %d", res.Evals, full.Evals)
	}
}

// TestOptimizeUnknownCandidateErrors covers the buildGroups fix: a stale
// Candidates entry must surface as a diagnosable error, not a panic.
func TestOptimizeUnknownCandidateErrors(t *testing.T) {
	m := testMarket(1)
	p := app.BT()
	deadline := FastestOnDemand(nil, p).T * 1.5

	cfg := smallConfig(m, p, deadline)
	cfg.Candidates = []cloud.MarketKey{{Type: "no-such-type", Zone: cloud.ZoneA}}
	if _, err := Optimize(cfg); err == nil || !strings.Contains(err.Error(), "not in catalog") {
		t.Errorf("unknown type: err = %v, want catalog error", err)
	}

	cfg.Candidates = []cloud.MarketKey{{Type: cloud.M1Medium.Name, Zone: "no-such-zone"}}
	if _, err := Optimize(cfg); err == nil || !strings.Contains(err.Error(), "no price history") {
		t.Errorf("unknown zone: err = %v, want missing-trace error", err)
	}
}

// TestPhiNeverExceedsT covers the minInterval clamp fix: for runs
// shorter than the 0.5h floor, Phi must clamp to T rather than return an
// interval above it (which would silently disable checkpointing).
func TestPhiNeverExceedsT(t *testing.T) {
	prices := make([]float64, 240)
	for i := range prices {
		prices[i] = 0.02
		if i%40 == 0 {
			prices[i] = 1.0 // periodic spikes give a finite MTTF
		}
	}
	tr := trace.New(trace.DefaultStep, prices)
	for _, T := range []int{0, 1, 2} {
		g := &model.Group{T: T, O: 0.0001, R: 0.01, Hist: tr}
		// A bid below the calm price fails immediately (MTTF 0, φ = 0),
		// the case where the old 0.5h floor overshot a T=0 run.
		for _, bid := range []float64{0.01, 0.05, 0.5} {
			if f := Phi(g, bid); f > float64(T) {
				t.Errorf("Phi(T=%d, bid=%v) = %v exceeds T", T, bid, f)
			}
		}
	}
}
