// Package opt implements SOMPI, the paper's monetary-cost optimizer
// (Section 4): on-demand instance type selection (Formulas 12–13), the
// two-level optimization that collapses checkpoint intervals into a
// function of the bid price (F = φ(P), Theorem 1) and searches bid prices
// on a logarithmic grid, the κ-subset circle-group selection of Section
// 4.4, and the adaptive window-by-window re-optimization of Algorithm 1.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
)

// Defaults from the paper's parameter study (Section 5.2).
const (
	// DefaultSlack reserves 20% of the deadline for checkpoint/recovery
	// overhead when sizing the on-demand fleet.
	DefaultSlack = 0.20
	// DefaultKappa is the number of circle groups SOMPI actually uses.
	DefaultKappa = 4
	// DefaultGridLevels is the number of logarithmic bid-price points per
	// group: H, H/2, H/4, ... H/2^(levels-1).
	DefaultGridLevels = 6
	// DefaultWindow is the adaptive optimization window T_m in hours.
	DefaultWindow = 15.0
	// DefaultMaxGroups caps the candidate groups entering the κ-subset
	// traversal (see Config.MaxGroups).
	DefaultMaxGroups = 8
)

// Config parameterizes one optimization.
type Config struct {
	// Profile is the application to run.
	Profile app.Profile
	// Market supplies price history for every candidate circle group.
	Market *cloud.Market
	// Deadline is the user's completion deadline in hours.
	Deadline float64
	// Slack, Kappa and GridLevels default to the paper's values when zero.
	Slack      float64
	Kappa      int
	GridLevels int
	// Candidates restricts the circle-group markets considered; nil means
	// every (type, zone) in the market.
	Candidates []cloud.MarketKey
	// OnDemandTypes restricts the recovery-fleet candidates; nil means the
	// whole catalog.
	OnDemandTypes []cloud.InstanceType
	// MaxGroups caps how many candidate groups enter the κ-subset
	// traversal, keeping the strongest standalone performers. The paper's
	// K is all 12 (type, zone) markets; pruning to the default 8 preserves
	// the optimum in practice (the dropped markets are strictly dominated)
	// while cutting the subset space by 5x.
	MaxGroups int
	// DisableCheckpoints forces F = T on every group (the w/o-CK and
	// All-Unable ablations of Section 5.4.2).
	DisableCheckpoints bool
	// MaxAllFail, when positive, rejects plans whose probability that
	// every circle group dies exceeds it. The adaptive loop uses this in
	// its final committed window, where an all-groups-dead outcome means
	// an on-demand recovery that can overshoot the deadline.
	MaxAllFail float64
}

func (c Config) withDefaults() Config {
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.Kappa == 0 {
		c.Kappa = DefaultKappa
	}
	if c.GridLevels == 0 {
		c.GridLevels = DefaultGridLevels
	}
	if c.MaxGroups == 0 {
		c.MaxGroups = DefaultMaxGroups
	}
	if c.Candidates == nil && c.Market != nil {
		c.Candidates = c.Market.Keys()
	}
	if c.OnDemandTypes == nil && c.Market != nil {
		c.OnDemandTypes = c.Market.Catalog
	}
	return c
}

// ErrNoFeasibleOnDemand is returned when no on-demand type can finish
// within the slack-reduced deadline; the caller must either relax the
// deadline or accept the fastest type regardless.
var ErrNoFeasibleOnDemand = errors.New("opt: no on-demand type meets the deadline")

// SelectOnDemand solves Formulas 12–13: among types whose execution time
// fits within Deadline·(1−Slack), pick the one with the smallest full-run
// cost. This decision is independent of the bid/interval choices (Section
// 4.1), which is what makes the divide-and-conquer split sound.
func SelectOnDemand(types []cloud.InstanceType, p app.Profile, deadline, slack float64) (model.OnDemand, error) {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	budget := deadline * (1 - slack)
	best := model.OnDemand{}
	bestCost := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T > budget {
			continue
		}
		if c := od.FullCost(); c < bestCost {
			best, bestCost = od, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return model.OnDemand{}, ErrNoFeasibleOnDemand
	}
	return best, nil
}

// FastestOnDemand returns the minimum-execution-time fleet — the paper's
// Baseline and the fallback when no type meets the deadline.
func FastestOnDemand(types []cloud.InstanceType, p app.Profile) model.OnDemand {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	best := model.OnDemand{}
	bestT := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T < bestT {
			best, bestT = od, od.T
		}
	}
	return best
}

// Phi is the paper's F = φ(P) dimension-reduction: given a bid price, the
// optimal checkpoint interval follows from the bid-dependent mean time to
// out-of-bid via the Young/Daly first-order formula √(2·O·MTTF), clamped
// to (0, T]. A bid that never fails historically needs no checkpoints
// (F = T, the paper's disabled convention).
func Phi(g *model.Group, bid float64) float64 {
	mttf := g.MTTF(bid)
	T := float64(g.T)
	if math.IsInf(mttf, 1) {
		return T
	}
	f := math.Sqrt(2 * g.O * mttf)
	if f > T {
		return T
	}
	const minInterval = 0.5 // below this, overhead dwarfs saved work
	if f < minInterval {
		f = minInterval
	}
	return f
}

// BidGrid returns the logarithmic bid-price grid for a group: H, H/2, ...
// H/2^(levels-1), descending. Low bids get dense coverage because the
// failure-rate function changes fastest there (Figure 4), which is the
// rationale for logarithmic search (Section 4.2.2).
func BidGrid(g *model.Group, levels int) []float64 {
	h := g.MaxBid()
	if h <= 0 {
		return nil
	}
	grid := make([]float64, 0, levels)
	for l := 0; l < levels; l++ {
		grid = append(grid, h/math.Pow(2, float64(l)))
	}
	return grid
}

// Result is a scored plan.
type Result struct {
	Plan model.Plan
	Est  model.Estimate
	// Evals counts cost-model evaluations performed — the optimization-
	// overhead metric of the κ parameter study.
	Evals int
}

// Optimize runs the full SOMPI pipeline and returns the cheapest plan
// whose expected completion time meets the deadline.
//
// If no spot plan is feasible the returned plan has no groups (pure
// on-demand). If not even on-demand fits, ErrNoFeasibleOnDemand is
// returned together with a fastest-fleet fallback plan.
func Optimize(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Market == nil {
		return Result{}, errors.New("opt: nil market")
	}
	if cfg.Deadline <= 0 {
		return Result{}, fmt.Errorf("opt: non-positive deadline %v", cfg.Deadline)
	}

	// Tight deadlines (the paper's 1.05x Baseline) leave less headroom
	// than the default 20% slack; relax the slack before giving up, so a
	// deadline that is feasible at all gets a plan.
	od, err := SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, cfg.Slack)
	for slack := cfg.Slack / 2; err != nil && slack > 0.005; slack /= 2 {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, slack)
	}
	if err != nil {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, 0)
	}
	if err != nil {
		fallback := FastestOnDemand(cfg.OnDemandTypes, cfg.Profile)
		plan := model.Plan{Recovery: fallback}
		return Result{Plan: plan, Est: model.Evaluate(plan)}, err
	}

	groups := buildGroups(cfg)
	best := Result{Plan: model.Plan{Recovery: od}}
	best.Est = model.Evaluate(best.Plan)
	evals := 1

	// Prepare every (group, bid-grid-point) pair once, with its
	// F = φ(P) interval; subsets below only combine prepared groups.
	prepared := make([][]*model.PreparedGroup, len(groups))
	for i, g := range groups {
		for _, bid := range BidGrid(g, cfg.GridLevels) {
			interval := float64(g.T)
			if !cfg.DisableCheckpoints {
				interval = Phi(g, bid)
			}
			gp := model.GroupPlan{Group: g, Bid: bid, Interval: interval}
			prepared[i] = append(prepared[i], model.Prepare(gp))
		}
	}

	// Rank groups by their best standalone expected cost and keep the
	// strongest MaxGroups for the subset traversal.
	if len(groups) > cfg.MaxGroups {
		type scored struct {
			idx   int
			score float64
		}
		scores := make([]scored, len(groups))
		for i := range groups {
			best := math.Inf(1)
			for _, pg := range prepared[i] {
				est := model.EvaluatePrepared([]*model.PreparedGroup{pg}, od)
				evals++
				if est.Cost < best {
					best = est.Cost
				}
			}
			scores[i] = scored{i, best}
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
		keptGroups := make([]*model.Group, cfg.MaxGroups)
		keptPrepared := make([][]*model.PreparedGroup, cfg.MaxGroups)
		for j := 0; j < cfg.MaxGroups; j++ {
			keptGroups[j] = groups[scores[j].idx]
			keptPrepared[j] = prepared[scores[j].idx]
		}
		groups, prepared = keptGroups, keptPrepared
	}

	kappa := cfg.Kappa
	if kappa > len(groups) {
		kappa = len(groups)
	}
	// Traverse every subset of up to κ circle groups (Section 4.4's
	// "traverse all of possible cases each with a specific combination"),
	// and within each subset every combination of grid bids.
	subset := make([]int, 0, kappa)
	pgs := make([]*model.PreparedGroup, 0, kappa)
	var searchBids func(depth int)
	searchBids = func(depth int) {
		if depth == len(subset) {
			est := model.EvaluatePrepared(pgs, od)
			evals++
			if cfg.MaxAllFail > 0 && est.PAllFail > cfg.MaxAllFail {
				return
			}
			if est.Time <= cfg.Deadline && est.Cost < best.Est.Cost {
				gps := make([]model.GroupPlan, len(pgs))
				for i, pg := range pgs {
					gps[i] = pg.GP
				}
				best = Result{Plan: model.Plan{Groups: gps, Recovery: od}, Est: est}
			}
			return
		}
		for _, pg := range prepared[subset[depth]] {
			pgs = append(pgs, pg)
			searchBids(depth + 1)
			pgs = pgs[:len(pgs)-1]
		}
	}
	var recurse func(start int)
	recurse = func(start int) {
		if len(subset) > 0 {
			searchBids(0)
		}
		if len(subset) == kappa {
			return
		}
		for i := start; i < len(groups); i++ {
			subset = append(subset, i)
			recurse(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	recurse(0)
	best.Evals = evals
	return best, nil
}

// buildGroups constructs the candidate circle groups.
func buildGroups(cfg Config) []*model.Group {
	groups := make([]*model.Group, 0, len(cfg.Candidates))
	for _, key := range cfg.Candidates {
		it, ok := cfg.Market.Catalog.ByName(key.Type)
		if !ok {
			panic(fmt.Sprintf("opt: candidate %v not in catalog", key))
		}
		g := model.NewGroup(cfg.Profile, it, key.Zone, cfg.Market.Trace(key.Type, key.Zone))
		// A group that cannot finish before the deadline even alone and
		// failure-free can still contribute checkpoints, but in practice
		// it only burns money; prune it like the paper's implementation.
		if float64(g.T) <= cfg.Deadline {
			groups = append(groups, g)
		}
	}
	return groups
}
