// Package opt implements SOMPI, the paper's monetary-cost optimizer
// (Section 4): on-demand instance type selection (Formulas 12–13), the
// two-level optimization that collapses checkpoint intervals into a
// function of the bid price (F = φ(P), Theorem 1) and searches bid prices
// on a logarithmic grid, the κ-subset circle-group selection of Section
// 4.4, and the adaptive window-by-window re-optimization of Algorithm 1.
package opt

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/obs"
)

// Defaults from the paper's parameter study (Section 5.2).
const (
	// DefaultSlack reserves 20% of the deadline for checkpoint/recovery
	// overhead when sizing the on-demand fleet.
	DefaultSlack = 0.20
	// DefaultKappa is the number of circle groups SOMPI actually uses.
	DefaultKappa = 4
	// DefaultGridLevels is the number of logarithmic bid-price points per
	// group: H, H/2, H/4, ... H/2^(levels-1).
	DefaultGridLevels = 6
	// DefaultWindow is the adaptive optimization window T_m in hours.
	DefaultWindow = 15.0
	// DefaultMaxGroups caps the candidate groups entering the κ-subset
	// traversal (see Config.MaxGroups).
	DefaultMaxGroups = 8
)

// Config parameterizes one optimization.
type Config struct {
	// Profile is the application to run.
	Profile app.Profile
	// Market supplies price history for every candidate circle group.
	// The optimizer only reads the shards named by Candidates (plus the
	// catalog for the recovery fleet); callers with a live *cloud.Market
	// should pass a Snapshot so ingestion cannot race the search.
	Market cloud.MarketView
	// Deadline is the user's completion deadline in hours.
	Deadline float64
	// Slack, Kappa and GridLevels default to the paper's values when zero.
	Slack      float64
	Kappa      int
	GridLevels int
	// Candidates restricts the circle-group markets considered; nil means
	// every (type, zone) in the market.
	Candidates []cloud.MarketKey
	// OnDemandTypes restricts the recovery-fleet candidates; nil means the
	// whole catalog.
	OnDemandTypes []cloud.InstanceType
	// MaxGroups caps how many candidate groups enter the κ-subset
	// traversal, keeping the strongest standalone performers. The paper's
	// K is all 12 (type, zone) markets; pruning to the default 8 preserves
	// the optimum in practice (the dropped markets are strictly dominated)
	// while cutting the subset space by 5x.
	MaxGroups int
	// DisableCheckpoints forces F = T on every group (the w/o-CK and
	// All-Unable ablations of Section 5.4.2).
	DisableCheckpoints bool
	// MaxAllFail, when positive, rejects plans whose probability that
	// every circle group dies exceeds it. The adaptive loop uses this in
	// its final committed window, where an all-groups-dead outcome means
	// an on-demand recovery that can overshoot the deadline.
	MaxAllFail float64
	// Workers is the number of concurrent subset-search workers. Zero
	// means runtime.GOMAXPROCS(0); 1 forces a fully serial search. The
	// returned Plan and Est are byte-identical at every worker count.
	Workers int
	// DisablePruning turns off the branch-and-bound lower-bound cuts,
	// forcing exhaustive enumeration. The optimum is unaffected either
	// way (pruning only discards provably-dominated subtrees); the knob
	// exists for the benchmark-regression harness and the determinism
	// tests.
	DisablePruning bool
	// Explain records the decision trail — per-candidate keep/reject
	// reasons, per-stage durations, the selected subset — into
	// Result.Explain. The plan itself is unaffected; the trail costs a
	// few allocations and clock reads, so it is off by default.
	Explain bool
}

func (c Config) withDefaults() Config {
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.Kappa == 0 {
		c.Kappa = DefaultKappa
	}
	if c.GridLevels == 0 {
		c.GridLevels = DefaultGridLevels
	}
	if c.MaxGroups == 0 {
		c.MaxGroups = DefaultMaxGroups
	}
	if c.Candidates == nil && c.Market != nil {
		c.Candidates = c.Market.Keys()
	}
	if c.OnDemandTypes == nil && c.Market != nil {
		c.OnDemandTypes = c.Market.Catalog()
	}
	return c
}

// validate reports ErrInvalidConfig-wrapped errors for numeric fields a
// defaulted Config cannot repair. It runs after withDefaults, so zero
// values have already been replaced by the paper's defaults and anything
// still out of range was set deliberately — and wrongly — by the caller.
func (c Config) validate() error {
	switch {
	case c.Market == nil:
		return fmt.Errorf("%w: nil market", ErrInvalidConfig)
	case math.IsNaN(c.Deadline) || c.Deadline <= 0:
		return fmt.Errorf("%w: non-positive deadline %v", ErrInvalidConfig, c.Deadline)
	case c.Slack < 0 || c.Slack >= 1:
		return fmt.Errorf("%w: slack %v outside [0,1)", ErrInvalidConfig, c.Slack)
	case c.Kappa < 1:
		return fmt.Errorf("%w: non-positive kappa %d", ErrInvalidConfig, c.Kappa)
	case c.GridLevels < 1:
		return fmt.Errorf("%w: non-positive grid levels %d", ErrInvalidConfig, c.GridLevels)
	case c.MaxGroups < 1:
		return fmt.Errorf("%w: non-positive max groups %d", ErrInvalidConfig, c.MaxGroups)
	case c.Kappa > c.MaxGroups:
		return fmt.Errorf("%w: kappa %d exceeds max groups %d", ErrInvalidConfig, c.Kappa, c.MaxGroups)
	case c.MaxAllFail < 0 || c.MaxAllFail > 1:
		return fmt.Errorf("%w: max-all-fail %v outside [0,1]", ErrInvalidConfig, c.MaxAllFail)
	case c.Workers < 0:
		return fmt.Errorf("%w: negative worker count %d", ErrInvalidConfig, c.Workers)
	}
	return nil
}

// SelectOnDemand solves Formulas 12–13: among types whose execution time
// fits within Deadline·(1−Slack), pick the one with the smallest full-run
// cost. This decision is independent of the bid/interval choices (Section
// 4.1), which is what makes the divide-and-conquer split sound.
func SelectOnDemand(types []cloud.InstanceType, p app.Profile, deadline, slack float64) (model.OnDemand, error) {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	budget := deadline * (1 - slack)
	best := model.OnDemand{}
	bestCost := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T > budget {
			continue
		}
		if c := od.FullCost(); c < bestCost {
			best, bestCost = od, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return model.OnDemand{}, ErrDeadlineInfeasible
	}
	return best, nil
}

// FastestOnDemand returns the minimum-execution-time fleet — the paper's
// Baseline and the fallback when no type meets the deadline.
func FastestOnDemand(types []cloud.InstanceType, p app.Profile) model.OnDemand {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	best := model.OnDemand{}
	bestT := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T < bestT {
			best, bestT = od, od.T
		}
	}
	return best
}

// Phi is the paper's F = φ(P) dimension-reduction: given a bid price, the
// optimal checkpoint interval follows from the bid-dependent mean time to
// out-of-bid via the Young/Daly first-order formula √(2·O·MTTF), clamped
// to (0, T]. A bid that never fails historically needs no checkpoints
// (F = T, the paper's disabled convention).
func Phi(g *model.Group, bid float64) float64 {
	mttf := g.MTTF(bid)
	T := float64(g.T)
	if math.IsInf(mttf, 1) {
		return T
	}
	f := math.Sqrt(2 * g.O * mttf)
	if f > T {
		return T
	}
	// Below half an hour, checkpoint overhead dwarfs the saved work — but
	// never clamp past T itself, or a very short run would silently flip
	// into the Interval >= T "no checkpoints" convention.
	minInterval := 0.5
	if T < minInterval {
		minInterval = T
	}
	if f < minInterval {
		f = minInterval
	}
	return f
}

// BidGrid returns the logarithmic bid-price grid for a group: H, H/2, ...
// H/2^(levels-1), descending. Low bids get dense coverage because the
// failure-rate function changes fastest there (Figure 4), which is the
// rationale for logarithmic search (Section 4.2.2).
func BidGrid(g *model.Group, levels int) []float64 {
	h := g.MaxBid()
	if h <= 0 {
		return nil
	}
	grid := make([]float64, 0, levels)
	for l := 0; l < levels; l++ {
		grid = append(grid, h/math.Pow(2, float64(l)))
	}
	return grid
}

// Result is a scored plan.
type Result struct {
	Plan model.Plan
	Est  model.Estimate
	// Evals counts cost-model evaluations performed — the optimization-
	// overhead metric of the κ parameter study. Pruned counts the
	// evaluations branch-and-bound skipped because a partial plan's spot
	// cost already exceeded the incumbent best. Plan and Est are
	// deterministic at any worker count; Evals and Pruned depend on how
	// quickly the shared incumbent tightens and are only reproducible
	// with Workers=1.
	Evals  int
	Pruned int
	// Explain is the decision trail, populated only when Config.Explain
	// was set (nil otherwise).
	Explain *Explain
}

// Optimize runs the full SOMPI pipeline and returns the cheapest plan
// whose expected completion time meets the deadline.
//
// Deprecated: use OptimizeContext, which adds cancellation and
// functional options. Optimize remains as a thin wrapper so pre-v1
// callers keep compiling; it behaves identically.
func Optimize(cfg Config) (Result, error) {
	return OptimizeContext(context.Background(), cfg)
}

// OptimizeContext runs the full SOMPI pipeline and returns the cheapest
// plan whose expected completion time meets the deadline. Options are
// applied to cfg first, then defaults, then validation (ErrInvalidConfig
// on out-of-range fields).
//
// If no spot plan is feasible the returned plan has no groups (pure
// on-demand). If not even on-demand fits, ErrDeadlineInfeasible is
// returned together with a fastest-fleet fallback plan.
//
// Cancelling ctx aborts the κ-subset search at the next evaluation
// checkpoint: OptimizeContext returns ctx.Err() together with a partial
// Result whose Evals/Pruned counters record how much of the search
// actually ran (the cancellation guarantee the service layer tests).
func OptimizeContext(ctx context.Context, cfg Config, opts ...Option) (Result, error) {
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// The decision trail and the span tree share one stage clock; when
	// neither is requested (no Explain, no collector in ctx) every
	// instrumentation point below is a nil-receiver no-op and the search
	// runs exactly as before — the overhead budget cmd/bench -obscheck
	// enforces.
	var ex *Explain
	var t0 time.Time
	if cfg.Explain {
		ex = &Explain{Kappa: cfg.Kappa, GridLevels: cfg.GridLevels}
		t0 = time.Now()
	}
	ctx, osp := obs.StartSpan(ctx, "opt.optimize")
	sc := newStageClock(ctx, ex)
	finish := func(res Result, err error) (Result, error) {
		sc.close()
		if ex != nil {
			ex.Evals, ex.Pruned = res.Evals, res.Pruned
			ex.TotalNs = time.Since(t0).Nanoseconds()
			for _, gp := range res.Plan.Groups {
				key := gp.Group.Key.String()
				ex.Selected = append(ex.Selected, key)
				for i := range ex.Candidates {
					if ex.Candidates[i].Market == key {
						ex.Candidates[i].Selected = true
					}
				}
			}
			res.Explain = ex
		}
		if osp != nil {
			osp.AttrInt("evals", int64(res.Evals))
			osp.AttrInt("pruned", int64(res.Pruned))
			osp.AttrFloat("cost", res.Est.Cost)
			osp.Fail(err)
			osp.End()
		}
		return res, err
	}

	// Tight deadlines (the paper's 1.05x Baseline) leave less headroom
	// than the default 20% slack; relax the slack before giving up, so a
	// deadline that is feasible at all gets a plan.
	sc.begin("select_on_demand")
	od, err := SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, cfg.Slack)
	for slack := cfg.Slack / 2; err != nil && slack > 0.005; slack /= 2 {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, slack)
	}
	if err != nil {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, 0)
	}
	if err != nil {
		fallback := FastestOnDemand(cfg.OnDemandTypes, cfg.Profile)
		plan := model.Plan{Recovery: fallback}
		return finish(Result{Plan: plan, Est: model.Evaluate(plan)}, err)
	}

	sc.begin("enumerate_candidates")
	groups, err := buildGroups(cfg, ex)
	if err != nil {
		return finish(Result{}, err)
	}
	best := Result{Plan: model.Plan{Recovery: od}}
	best.Est = model.Evaluate(best.Plan)
	evals := 1
	if ex != nil {
		ex.BaselineCost = best.Est.Cost
	}

	// Prepare every (group, bid-grid-point) pair once, with its
	// F = φ(P) interval; subsets below only combine prepared groups.
	// Prewarm publishes each group's per-bid caches for the whole grid
	// while still single-threaded, so the parallel search below only ever
	// takes the lock-free read path.
	sc.begin("bid_grid")
	prepared := make([][]*model.PreparedGroup, len(groups))
	for i, g := range groups {
		grid := BidGrid(g, cfg.GridLevels)
		g.Prewarm(grid)
		for _, bid := range grid {
			interval := float64(g.T)
			if !cfg.DisableCheckpoints {
				interval = Phi(g, bid)
			}
			gp := model.GroupPlan{Group: g, Bid: bid, Interval: interval}
			prepared[i] = append(prepared[i], model.Prepare(gp))
		}
	}

	// Rank groups by their best standalone expected cost and keep the
	// strongest MaxGroups for the subset traversal.
	if len(groups) > cfg.MaxGroups {
		sc.begin("rank_candidates")
		// decIdx maps group index i to its entry in ex.Candidates (the
		// kept decisions, in enumeration order).
		var decIdx []int
		if ex != nil {
			for i := range ex.Candidates {
				if ex.Candidates[i].Kept {
					decIdx = append(decIdx, i)
				}
			}
		}
		type scored struct {
			idx   int
			score float64
		}
		var ev model.Evaluator
		single := make([]*model.PreparedGroup, 1)
		scores := make([]scored, len(groups))
		for i := range groups {
			best := math.Inf(1)
			for _, pg := range prepared[i] {
				single[0] = pg
				est := ev.EvaluatePrepared(single, od)
				evals++
				if est.Cost < best {
					best = est.Cost
				}
			}
			scores[i] = scored{i, best}
			if ex != nil {
				ex.Candidates[decIdx[i]].StandaloneCost = best
			}
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
		keptGroups := make([]*model.Group, cfg.MaxGroups)
		keptPrepared := make([][]*model.PreparedGroup, cfg.MaxGroups)
		for j := 0; j < cfg.MaxGroups; j++ {
			keptGroups[j] = groups[scores[j].idx]
			keptPrepared[j] = prepared[scores[j].idx]
		}
		if ex != nil {
			for rank := range scores {
				d := &ex.Candidates[decIdx[scores[rank].idx]]
				if rank < cfg.MaxGroups {
					d.Reason = fmt.Sprintf("standalone cost $%.2f ranked %d of %d, within the top-%d cutoff",
						scores[rank].score, rank+1, len(scores), cfg.MaxGroups)
				} else {
					d.Kept = false
					d.Reason = fmt.Sprintf("dominated: standalone cost $%.2f ranked %d of %d, below the top-%d cutoff",
						scores[rank].score, rank+1, len(scores), cfg.MaxGroups)
				}
			}
		}
		groups, prepared = keptGroups, keptPrepared
	}

	kappa := cfg.Kappa
	if kappa > len(groups) {
		kappa = len(groups)
	}
	if len(groups) == 0 {
		best.Evals = evals
		return finish(best, nil)
	}

	// Traverse every subset of up to κ circle groups (Section 4.4's
	// "traverse all of possible cases each with a specific combination"),
	// and within each subset every combination of grid bids. The subset
	// space partitions cleanly by first group index — partition i holds
	// every subset whose smallest member is i — so each partition becomes
	// one work unit for a GOMAXPROCS-sized worker pool. Workers keep a
	// per-partition best and share only a monotonically-tightening
	// incumbent cost for pruning; the final merge walks partitions in
	// index order with a strict < comparison, which reproduces the serial
	// traversal's first-strictly-better-wins tie-breaking exactly (see
	// searcher.searchBids for why pruning cannot disturb the winner).
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if ex != nil {
		ex.Workers = workers
	}

	// minSpot[i] bounds the cheapest possible spot contribution of group
	// i across its bid grid; suffix sums of it sharpen the lower bound.
	minSpot := make([]float64, len(groups))
	for i, pgs := range prepared {
		minSpot[i] = math.Inf(1)
		for _, pg := range pgs {
			if c := pg.CostSpot(); c < minSpot[i] {
				minSpot[i] = c
			}
		}
	}

	// Cancellation: a watcher goroutine flips stop when ctx is done, and
	// every worker polls the flag on each bid-grid descent, so an
	// abandoned request stops burning CPU within roughly one cost-model
	// evaluation. Polling an atomic bool costs ~1ns against the ~µs
	// evaluation, which is why the flag is checked per grid point rather
	// than per partition.
	var stop atomic.Bool
	if done := ctx.Done(); done != nil {
		watch := make(chan struct{})
		defer close(watch)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-watch:
			}
		}()
	}

	sc.begin("subset_search")
	incumbent := newSharedCost(best.Est.Cost)
	parts := make([]partitionResult, len(groups))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, wsp := obs.StartSpan(ctx, "opt.search.worker")
			partitions, wevals, wpruned := 0, 0, 0
			s := &searcher{
				cfg:       cfg,
				od:        od,
				prepared:  prepared,
				minSpot:   minSpot,
				kappa:     kappa,
				baseline:  best.Est.Cost,
				incumbent: incumbent,
				stop:      &stop,
				subset:    make([]int, 0, kappa),
				pgs:       make([]*model.PreparedGroup, 0, kappa),
				partial:   make([]float64, kappa+1),
				suffixMin: make([]float64, kappa+1),
				leaves:    make([]int, kappa+1),
			}
			for first := range tasks {
				parts[first] = s.searchPartition(first)
				partitions++
				wevals += parts[first].evals
				wpruned += parts[first].pruned
			}
			if wsp != nil {
				wsp.AttrInt("partitions", int64(partitions))
				wsp.AttrInt("evals", int64(wevals))
				wsp.AttrInt("pruned", int64(wpruned))
				wsp.End()
			}
		}()
	}
	for i := range groups {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	pruned := 0
	for _, pr := range parts {
		evals += pr.evals
		pruned += pr.pruned
		if pr.found && pr.best.Est.Cost < best.Est.Cost {
			best = pr.best
		}
	}
	best.Evals = evals
	best.Pruned = pruned
	if err := ctx.Err(); err != nil {
		// The merge above still ran: the partial Result documents how far
		// the search got (and may hold a usable incumbent plan), but a
		// cancelled search makes no optimality claim.
		return finish(best, err)
	}
	return finish(best, nil)
}

// sharedCost is the workers' shared incumbent: the cheapest plan cost
// found so far, stored as positive-float bits so a CAS loop can lower it
// monotonically without locks. For positive IEEE-754 floats the bit
// pattern orders identically to the value.
type sharedCost struct {
	bits atomic.Uint64
}

func newSharedCost(c float64) *sharedCost {
	s := &sharedCost{}
	s.bits.Store(math.Float64bits(c))
	return s
}

func (s *sharedCost) load() float64 { return math.Float64frombits(s.bits.Load()) }

func (s *sharedCost) lower(c float64) {
	bits := math.Float64bits(c)
	for {
		cur := s.bits.Load()
		if bits >= cur || s.bits.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// partitionResult is one partition's contribution to the final merge.
type partitionResult struct {
	best   Result
	found  bool
	evals  int
	pruned int
}

// searcher is the per-worker search state: scratch buffers and an
// allocation-free evaluator, reused across every partition the worker
// pulls. Nothing in it is shared; the only cross-worker communication is
// the incumbent cost.
type searcher struct {
	cfg       Config
	od        model.OnDemand
	prepared  [][]*model.PreparedGroup
	minSpot   []float64
	kappa     int
	baseline  float64
	incumbent *sharedCost
	stop      *atomic.Bool
	eval      model.Evaluator

	subset []int
	pgs    []*model.PreparedGroup
	// partial[d] is the spot-cost sum of the groups placed at depths
	// < d; suffixMin[d] is the cheapest possible spot cost of the groups
	// at depths >= d; leaves[d] is the number of bid combinations below
	// depth d. All three are per-subset precomputations for the
	// branch-and-bound cut.
	partial   []float64
	suffixMin []float64
	leaves    []int

	best   Result
	found  bool
	evals  int
	pruned int
}

// searchPartition traverses every subset whose first (smallest) group
// index is first, in the exact order the serial recursion visits them.
func (s *searcher) searchPartition(first int) partitionResult {
	s.best, s.found = Result{}, false
	s.evals, s.pruned = 0, 0
	s.subset = s.subset[:0]
	s.subset = append(s.subset, first)
	s.extend(first + 1)
	return partitionResult{best: s.best, found: s.found, evals: s.evals, pruned: s.pruned}
}

// extend evaluates the current subset's bid grid, then grows the subset
// with every index above start, mirroring the serial recursion.
func (s *searcher) extend(start int) {
	if s.stop.Load() {
		return
	}
	s.searchSubset()
	if len(s.subset) == s.kappa {
		return
	}
	for i := start; i < len(s.prepared); i++ {
		s.subset = append(s.subset, i)
		s.extend(i + 1)
		s.subset = s.subset[:len(s.subset)-1]
	}
}

// searchSubset enumerates every grid-bid combination for the current
// subset with branch-and-bound cuts.
func (s *searcher) searchSubset() {
	n := len(s.subset)
	// leaves[d]: bid combinations in depths d..n-1; suffixMin[d]: spot
	// cost floor of depths d..n-1.
	s.leaves[n] = 1
	s.suffixMin[n] = 0
	for d := n - 1; d >= 0; d-- {
		s.leaves[d] = s.leaves[d+1] * len(s.prepared[s.subset[d]])
		s.suffixMin[d] = s.suffixMin[d+1] + s.minSpot[s.subset[d]]
	}
	if !s.cfg.DisablePruning && s.suffixMin[0] > s.incumbent.load() {
		// Even the cheapest bid choice for every member exceeds the
		// incumbent: skip the whole subset.
		s.pruned += s.leaves[0]
		return
	}
	s.partial[0] = 0
	s.pgs = s.pgs[:0]
	s.searchBids(0)
}

func (s *searcher) searchBids(depth int) {
	if depth == len(s.subset) {
		est := s.eval.EvaluatePrepared(s.pgs, s.od)
		s.evals++
		if s.cfg.MaxAllFail > 0 && est.PAllFail > s.cfg.MaxAllFail {
			return
		}
		if est.Time <= s.cfg.Deadline && est.Cost < s.localBound() {
			gps := make([]model.GroupPlan, len(s.pgs))
			for i, pg := range s.pgs {
				gps[i] = pg.GP
			}
			s.best = Result{Plan: model.Plan{Groups: gps, Recovery: s.od}, Est: est}
			s.found = true
			s.incumbent.lower(est.Cost)
		}
		return
	}
	for _, pg := range s.prepared[s.subset[depth]] {
		if s.stop.Load() {
			return
		}
		bound := s.partial[depth] + pg.CostSpot() + s.suffixMin[depth+1]
		// A plan's cost is its groups' spot costs plus a non-negative
		// on-demand term, so bound is a true lower bound on every leaf
		// below this choice. Pruning only on strict > keeps equal-cost
		// plans alive: the eventual winner has cost equal to the final
		// incumbent, its bounds never strictly exceed a value the
		// incumbent (which only tightens) held at any earlier time, so
		// the winning leaf is always evaluated — which is what makes the
		// result independent of worker count and pruning alike.
		if !s.cfg.DisablePruning && bound > s.incumbent.load() {
			s.pruned += s.leaves[depth+1]
			continue
		}
		s.partial[depth+1] = s.partial[depth] + pg.CostSpot()
		s.pgs = append(s.pgs, pg)
		s.searchBids(depth + 1)
		s.pgs = s.pgs[:len(s.pgs)-1]
	}
}

// localBound is the acceptance threshold for the current partition: the
// partition's own best if it has one, else the pure-on-demand baseline.
// Acceptance must not consult the shared incumbent — another partition's
// equal-cost plan would otherwise block this one nondeterministically —
// so determinism comes from per-partition bests merged in index order.
func (s *searcher) localBound() float64 {
	if s.found {
		return s.best.Est.Cost
	}
	return s.baseline
}

// buildGroups constructs the candidate circle groups. A candidate naming
// an instance type outside the market's catalog, or a market the trace
// set does not cover, is a caller error (typically a stale Candidates
// list) and is reported as such rather than panicking. With ex non-nil
// every candidate's keep/reject decision lands in the trail.
func buildGroups(cfg Config, ex *Explain) ([]*model.Group, error) {
	groups := make([]*model.Group, 0, len(cfg.Candidates))
	for _, key := range cfg.Candidates {
		it, ok := cfg.Market.Catalog().ByName(key.Type)
		if !ok {
			return nil, fmt.Errorf("%w: candidate %v not in catalog", ErrNoCandidates, key)
		}
		tr, ok := cfg.Market.TraceFor(key)
		if !ok {
			return nil, fmt.Errorf("%w: candidate %v has no price history in the market", ErrNoCandidates, key)
		}
		g := model.NewGroup(cfg.Profile, it, key.Zone, tr)
		// A group that cannot finish before the deadline even alone and
		// failure-free can still contribute checkpoints, but in practice
		// it only burns money; prune it like the paper's implementation.
		kept := float64(g.T) <= cfg.Deadline
		if kept {
			groups = append(groups, g)
		}
		if ex != nil {
			d := CandidateDecision{
				Market:          g.Key.String(),
				Kept:            kept,
				StandaloneHours: float64(g.T),
			}
			if kept {
				d.Reason = "entered the κ-subset search"
			} else {
				d.Reason = fmt.Sprintf("standalone completion time %.1fh exceeds the %.1fh deadline even failure-free",
					float64(g.T), cfg.Deadline)
			}
			ex.Candidates = append(ex.Candidates, d)
		}
	}
	return groups, nil
}
