// Package opt implements SOMPI, the paper's monetary-cost optimizer
// (Section 4): on-demand instance type selection (Formulas 12–13), the
// two-level optimization that collapses checkpoint intervals into a
// function of the bid price (F = φ(P), Theorem 1) and searches bid prices
// on a logarithmic grid, the κ-subset circle-group selection of Section
// 4.4, and the adaptive window-by-window re-optimization of Algorithm 1.
package opt

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
	"sompi/internal/obs"
)

// Defaults from the paper's parameter study (Section 5.2).
const (
	// DefaultSlack reserves 20% of the deadline for checkpoint/recovery
	// overhead when sizing the on-demand fleet.
	DefaultSlack = 0.20
	// DefaultKappa is the number of circle groups SOMPI actually uses.
	DefaultKappa = 4
	// DefaultGridLevels is the number of logarithmic bid-price points per
	// group: H, H/2, H/4, ... H/2^(levels-1).
	DefaultGridLevels = 6
	// DefaultWindow is the adaptive optimization window T_m in hours.
	DefaultWindow = 15.0
	// DefaultMaxGroups caps the candidate groups entering the κ-subset
	// traversal (see Config.MaxGroups).
	DefaultMaxGroups = 8
)

// Config parameterizes one optimization.
type Config struct {
	// Profile is the application to run.
	Profile app.Profile
	// Market supplies price history for every candidate circle group.
	// The optimizer only reads the shards named by Candidates (plus the
	// catalog for the recovery fleet); callers with a live *cloud.Market
	// should pass a Snapshot so ingestion cannot race the search.
	Market cloud.MarketView
	// Deadline is the user's completion deadline in hours.
	Deadline float64
	// Slack, Kappa and GridLevels default to the paper's values when zero.
	Slack      float64
	Kappa      int
	GridLevels int
	// Candidates restricts the circle-group markets considered; nil means
	// every (type, zone) in the market.
	Candidates []cloud.MarketKey
	// OnDemandTypes restricts the recovery-fleet candidates; nil means the
	// whole catalog.
	OnDemandTypes []cloud.InstanceType
	// MaxGroups caps how many candidate groups enter the κ-subset
	// traversal, keeping the strongest standalone performers. The paper's
	// K is all 12 (type, zone) markets; pruning to the default 8 preserves
	// the optimum in practice (the dropped markets are strictly dominated)
	// while cutting the subset space by 5x.
	MaxGroups int
	// DisableCheckpoints forces F = T on every group (the w/o-CK and
	// All-Unable ablations of Section 5.4.2).
	DisableCheckpoints bool
	// MaxAllFail, when positive, rejects plans whose probability that
	// every circle group dies exceeds it. The adaptive loop uses this in
	// its final committed window, where an all-groups-dead outcome means
	// an on-demand recovery that can overshoot the deadline.
	MaxAllFail float64
	// Workers is the number of concurrent subset-search workers. Zero
	// means runtime.GOMAXPROCS(0); 1 forces a fully serial search. The
	// returned Plan and Est are byte-identical at every worker count.
	Workers int
	// DisablePruning turns off the branch-and-bound lower-bound cuts,
	// forcing exhaustive enumeration. The optimum is unaffected either
	// way (pruning only discards provably-dominated subtrees); the knob
	// exists for the benchmark-regression harness and the determinism
	// tests.
	DisablePruning bool
	// InitialIncumbent, when positive, seeds the branch-and-bound
	// incumbent with an externally known achievable cost — typically the
	// session's previous plan re-evaluated under the current market (see
	// WarmBound) — so pruning starts tight instead of from the on-demand
	// baseline. The returned plan is bit-identical to a cold search's:
	// an admissible seed (≥ the true optimum) can never prune an optimal
	// leaf, and an inadmissible one is detected — the search found
	// nothing at or below the seed — and answered by re-running the
	// subset search cold (Result.WarmRetried). Zero (or a seed above the
	// baseline) disables warm starting.
	InitialIncumbent float64
	// Reuse, when non-nil, carries prepared-group state and evaluated
	// subset costs across optimizations of the same market. Hits are
	// exact — keyed on the shard version vector and window bounds — so
	// the plan is unaffected; skipped work is reported in
	// Result.SavedEvals and Result.ReusedGroups. Views that cannot state
	// their window bounds exactly run cold. The cache is safe for
	// concurrent optimizations.
	Reuse *ReuseCache
	// Explain records the decision trail — per-candidate keep/reject
	// reasons, per-stage durations, the selected subset — into
	// Result.Explain. The plan itself is unaffected; the trail costs a
	// few allocations and clock reads, so it is off by default.
	Explain bool
}

func (c Config) withDefaults() Config {
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.Kappa == 0 {
		c.Kappa = DefaultKappa
	}
	if c.GridLevels == 0 {
		c.GridLevels = DefaultGridLevels
	}
	if c.MaxGroups == 0 {
		c.MaxGroups = DefaultMaxGroups
	}
	if c.Candidates == nil && c.Market != nil {
		c.Candidates = c.Market.Keys()
	}
	if c.OnDemandTypes == nil && c.Market != nil {
		c.OnDemandTypes = c.Market.Catalog()
	}
	return c
}

// validate reports ErrInvalidConfig-wrapped errors for numeric fields a
// defaulted Config cannot repair. It runs after withDefaults, so zero
// values have already been replaced by the paper's defaults and anything
// still out of range was set deliberately — and wrongly — by the caller.
func (c Config) validate() error {
	switch {
	case c.Market == nil:
		return fmt.Errorf("%w: nil market", ErrInvalidConfig)
	case math.IsNaN(c.Deadline) || c.Deadline <= 0:
		return fmt.Errorf("%w: non-positive deadline %v", ErrInvalidConfig, c.Deadline)
	case c.Slack < 0 || c.Slack >= 1:
		return fmt.Errorf("%w: slack %v outside [0,1)", ErrInvalidConfig, c.Slack)
	case c.Kappa < 1:
		return fmt.Errorf("%w: non-positive kappa %d", ErrInvalidConfig, c.Kappa)
	case c.GridLevels < 1:
		return fmt.Errorf("%w: non-positive grid levels %d", ErrInvalidConfig, c.GridLevels)
	case c.MaxGroups < 1:
		return fmt.Errorf("%w: non-positive max groups %d", ErrInvalidConfig, c.MaxGroups)
	case c.Kappa > c.MaxGroups:
		return fmt.Errorf("%w: kappa %d exceeds max groups %d", ErrInvalidConfig, c.Kappa, c.MaxGroups)
	case c.MaxAllFail < 0 || c.MaxAllFail > 1:
		return fmt.Errorf("%w: max-all-fail %v outside [0,1]", ErrInvalidConfig, c.MaxAllFail)
	case c.Workers < 0:
		return fmt.Errorf("%w: negative worker count %d", ErrInvalidConfig, c.Workers)
	case math.IsNaN(c.InitialIncumbent) || c.InitialIncumbent < 0:
		return fmt.Errorf("%w: negative initial incumbent %v", ErrInvalidConfig, c.InitialIncumbent)
	}
	return nil
}

// SelectOnDemand solves Formulas 12–13: among types whose execution time
// fits within Deadline·(1−Slack), pick the one with the smallest full-run
// cost. This decision is independent of the bid/interval choices (Section
// 4.1), which is what makes the divide-and-conquer split sound.
func SelectOnDemand(types []cloud.InstanceType, p app.Profile, deadline, slack float64) (model.OnDemand, error) {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	budget := deadline * (1 - slack)
	best := model.OnDemand{}
	bestCost := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T > budget {
			continue
		}
		if c := od.FullCost(); c < bestCost {
			best, bestCost = od, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return model.OnDemand{}, ErrDeadlineInfeasible
	}
	return best, nil
}

// FastestOnDemand returns the minimum-execution-time fleet — the paper's
// Baseline and the fallback when no type meets the deadline.
func FastestOnDemand(types []cloud.InstanceType, p app.Profile) model.OnDemand {
	if len(types) == 0 {
		types = cloud.DefaultCatalog()
	}
	best := model.OnDemand{}
	bestT := math.Inf(1)
	for _, it := range types {
		od := model.NewOnDemand(p, it)
		if od.T < bestT {
			best, bestT = od, od.T
		}
	}
	return best
}

// Phi is the paper's F = φ(P) dimension-reduction: given a bid price, the
// optimal checkpoint interval follows from the bid-dependent mean time to
// out-of-bid via the Young/Daly first-order formula √(2·O·MTTF), clamped
// to (0, T]. A bid that never fails historically needs no checkpoints
// (F = T, the paper's disabled convention).
func Phi(g *model.Group, bid float64) float64 {
	mttf := g.MTTF(bid)
	T := float64(g.T)
	if math.IsInf(mttf, 1) {
		return T
	}
	f := math.Sqrt(2 * g.O * mttf)
	if f > T {
		return T
	}
	// Below half an hour, checkpoint overhead dwarfs the saved work — but
	// never clamp past T itself, or a very short run would silently flip
	// into the Interval >= T "no checkpoints" convention.
	minInterval := 0.5
	if T < minInterval {
		minInterval = T
	}
	if f < minInterval {
		f = minInterval
	}
	return f
}

// BidGrid returns the logarithmic bid-price grid for a group: H, H/2, ...
// H/2^(levels-1), descending. Low bids get dense coverage because the
// failure-rate function changes fastest there (Figure 4), which is the
// rationale for logarithmic search (Section 4.2.2).
func BidGrid(g *model.Group, levels int) []float64 {
	h := g.MaxBid()
	if h <= 0 {
		return nil
	}
	grid := make([]float64, 0, levels)
	for l := 0; l < levels; l++ {
		grid = append(grid, h/math.Pow(2, float64(l)))
	}
	return grid
}

// Result is a scored plan.
type Result struct {
	Plan model.Plan
	Est  model.Estimate
	// Evals counts cost-model evaluations performed — the optimization-
	// overhead metric of the κ parameter study. Pruned counts the
	// evaluations branch-and-bound skipped because a partial plan's spot
	// cost already exceeded the incumbent best.
	//
	// Determinism contract: Plan and Est are bit-identical at every
	// worker count, with or without pruning, warm starting and reuse.
	// Evals and Pruned are exactly deterministic at Workers: 1 — the
	// single worker drains the unit queue in the fixed dispatch order,
	// so the incumbent trajectory is a pure function of the Config (and,
	// with Config.Reuse, of the cache contents at entry); two identical
	// calls return identical counters, which the determinism tests
	// assert. At Workers > 1 the counters are boundedly nondeterministic:
	// scheduling decides how quickly the shared incumbent tightens, so
	// Evals+Pruned still covers the same leaf space but the split
	// between the two (and Evals itself) varies run to run.
	Evals  int
	Pruned int
	// SavedEvals counts leaf evaluations answered by Config.Reuse's
	// memo instead of the cost model (each would otherwise appear in
	// Evals), plus ranking-stage standalone evaluations skipped for
	// unchanged candidates.
	SavedEvals int
	// ReusedGroups counts candidate groups whose prepared state
	// (failure distributions, bid grid, spot-cost floor) came from
	// Config.Reuse instead of being re-derived.
	ReusedGroups int
	// WarmRetried reports that Config.InitialIncumbent turned out to be
	// inadmissible (below the true optimum, so the warm search pruned
	// everything at or above it) and the subset search was re-run cold
	// to preserve the determinism contract. Evals/Pruned then include
	// both passes.
	WarmRetried bool
	// Explain is the decision trail, populated only when Config.Explain
	// was set (nil otherwise).
	Explain *Explain
}

// Optimize runs the full SOMPI pipeline and returns the cheapest plan
// whose expected completion time meets the deadline.
//
// Deprecated: use OptimizeContext, which adds cancellation and
// functional options. Optimize remains as a thin wrapper so pre-v1
// callers keep compiling; it behaves identically.
func Optimize(cfg Config) (Result, error) {
	return OptimizeContext(context.Background(), cfg)
}

// OptimizeContext runs the full SOMPI pipeline and returns the cheapest
// plan whose expected completion time meets the deadline. Options are
// applied to cfg first, then defaults, then validation (ErrInvalidConfig
// on out-of-range fields).
//
// If no spot plan is feasible the returned plan has no groups (pure
// on-demand). If not even on-demand fits, ErrDeadlineInfeasible is
// returned together with a fastest-fleet fallback plan.
//
// Cancelling ctx aborts the κ-subset search at the next evaluation
// checkpoint: OptimizeContext returns ctx.Err() together with a partial
// Result whose Evals/Pruned counters record how much of the search
// actually ran (the cancellation guarantee the service layer tests).
func OptimizeContext(ctx context.Context, cfg Config, opts ...Option) (Result, error) {
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// The decision trail and the span tree share one stage clock; when
	// neither is requested (no Explain, no collector in ctx) every
	// instrumentation point below is a nil-receiver no-op and the search
	// runs exactly as before — the overhead budget cmd/bench -obscheck
	// enforces.
	var ex *Explain
	var t0 time.Time
	if cfg.Explain {
		ex = &Explain{Kappa: cfg.Kappa, GridLevels: cfg.GridLevels}
		t0 = time.Now()
	}
	ctx, osp := obs.StartSpan(ctx, "opt.optimize")
	sc := newStageClock(ctx, ex)
	finish := func(res Result, err error) (Result, error) {
		sc.close()
		if ex != nil {
			ex.Evals, ex.Pruned = res.Evals, res.Pruned
			ex.TotalNs = time.Since(t0).Nanoseconds()
			for _, gp := range res.Plan.Groups {
				key := gp.Group.Key.String()
				ex.Selected = append(ex.Selected, key)
				for i := range ex.Candidates {
					if ex.Candidates[i].Market == key {
						ex.Candidates[i].Selected = true
					}
				}
			}
			res.Explain = ex
		}
		if osp != nil {
			osp.AttrInt("evals", int64(res.Evals))
			osp.AttrInt("pruned", int64(res.Pruned))
			osp.AttrFloat("cost", res.Est.Cost)
			osp.Fail(err)
			osp.End()
		}
		return res, err
	}

	// Tight deadlines (the paper's 1.05x Baseline) leave less headroom
	// than the default 20% slack; relax the slack before giving up, so a
	// deadline that is feasible at all gets a plan.
	sc.begin("select_on_demand")
	od, err := selectRelaxed(cfg)
	if err != nil {
		fallback := FastestOnDemand(cfg.OnDemandTypes, cfg.Profile)
		plan := model.Plan{Recovery: fallback}
		return finish(Result{Plan: plan, Est: model.Evaluate(plan)}, err)
	}

	// Delta reuse: with a cache and a view whose window bounds are exact,
	// candidates whose (shard version, window, parameters) fingerprint is
	// unchanged skip Prewarm/Prepare below and pull their prepared state
	// from the previous optimization.
	rb := bindReuse(cfg)

	sc.begin("enumerate_candidates")
	groups, entries, err := buildGroups(cfg, ex, rb)
	if err != nil {
		return finish(Result{}, err)
	}
	best := Result{Plan: model.Plan{Recovery: od}}
	best.Est = model.Evaluate(best.Plan)
	evals := 1
	saved := 0
	reusedGroups := 0
	if ex != nil {
		ex.BaselineCost = best.Est.Cost
	}

	// Prepare every (group, bid-grid-point) pair once, with its
	// F = φ(P) interval; subsets below only combine prepared groups.
	// Prewarm publishes each group's per-bid caches for the whole grid
	// while still single-threaded, so the parallel search below only ever
	// takes the lock-free read path. Cache hits arrive with all of that
	// already done; fresh derivations are registered for the next
	// optimization.
	sc.begin("bid_grid")
	prepared := make([][]*model.PreparedGroup, len(groups))
	minSpot := make([]float64, len(groups))
	for i, g := range groups {
		if e := entries[i]; e != nil && e.prepared != nil {
			groups[i] = e.g
			prepared[i] = e.prepared
			minSpot[i] = e.minSpot
			reusedGroups++
			continue
		}
		grid := BidGrid(g, cfg.GridLevels)
		g.Prewarm(grid)
		minSpot[i] = math.Inf(1)
		for _, bid := range grid {
			interval := float64(g.T)
			if !cfg.DisableCheckpoints {
				interval = Phi(g, bid)
			}
			gp := model.GroupPlan{Group: g, Bid: bid, Interval: interval}
			pg := model.Prepare(gp)
			prepared[i] = append(prepared[i], pg)
			if c := pg.CostSpot(); c < minSpot[i] {
				minSpot[i] = c
			}
		}
		if e := entries[i]; e != nil {
			e.prepared = prepared[i]
			e.minSpot = minSpot[i]
			entries[i] = rb.cache.storeGroup(groupSlot{key: g.Key, profile: cfg.Profile.Name}, e)
		}
	}

	// Rank groups by their best standalone expected cost and keep the
	// strongest MaxGroups for the subset traversal. Standalone costs are
	// memoized per (group state, on-demand fleet) in the reuse cache —
	// the ranking, like everything else, is bit-identical either way.
	odk := odKeyFor(od)
	if len(groups) > cfg.MaxGroups {
		sc.begin("rank_candidates")
		// decIdx maps group index i to its entry in ex.Candidates (the
		// kept decisions, in enumeration order).
		var decIdx []int
		if ex != nil {
			for i := range ex.Candidates {
				if ex.Candidates[i].Kept {
					decIdx = append(decIdx, i)
				}
			}
		}
		type scored struct {
			idx   int
			score float64
		}
		var ev model.Evaluator
		single := make([]*model.PreparedGroup, 1)
		scores := make([]scored, len(groups))
		for i := range groups {
			best := math.Inf(1)
			cached := false
			if e := entries[i]; e != nil {
				if c, ok := rb.cache.standaloneCost(e, odk); ok {
					best = c
					cached = true
					saved += len(prepared[i])
				}
			}
			if !cached {
				for _, pg := range prepared[i] {
					single[0] = pg
					est := ev.EvaluatePrepared(single, od)
					evals++
					if est.Cost < best {
						best = est.Cost
					}
				}
				if e := entries[i]; e != nil {
					rb.cache.putStandalone(e, odk, best)
				}
			}
			scores[i] = scored{i, best}
			if ex != nil {
				ex.Candidates[decIdx[i]].StandaloneCost = best
			}
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
		keptGroups := make([]*model.Group, cfg.MaxGroups)
		keptPrepared := make([][]*model.PreparedGroup, cfg.MaxGroups)
		keptEntries := make([]*reuseEntry, cfg.MaxGroups)
		keptMinSpot := make([]float64, cfg.MaxGroups)
		for j := 0; j < cfg.MaxGroups; j++ {
			keptGroups[j] = groups[scores[j].idx]
			keptPrepared[j] = prepared[scores[j].idx]
			keptEntries[j] = entries[scores[j].idx]
			keptMinSpot[j] = minSpot[scores[j].idx]
		}
		if ex != nil {
			for rank := range scores {
				d := &ex.Candidates[decIdx[scores[rank].idx]]
				if rank < cfg.MaxGroups {
					d.Reason = fmt.Sprintf("standalone cost $%.2f ranked %d of %d, within the top-%d cutoff",
						scores[rank].score, rank+1, len(scores), cfg.MaxGroups)
				} else {
					d.Kept = false
					d.Reason = fmt.Sprintf("dominated: standalone cost $%.2f ranked %d of %d, below the top-%d cutoff",
						scores[rank].score, rank+1, len(scores), cfg.MaxGroups)
				}
			}
		}
		groups, prepared, entries, minSpot = keptGroups, keptPrepared, keptEntries, keptMinSpot
	}

	kappa := cfg.Kappa
	if kappa > len(groups) {
		kappa = len(groups)
	}
	if len(groups) == 0 {
		best.Evals = evals
		best.SavedEvals = saved
		best.ReusedGroups = reusedGroups
		return finish(best, nil)
	}

	// Traverse every subset of up to κ circle groups (Section 4.4's
	// "traverse all of possible cases each with a specific combination"),
	// and within each subset every combination of grid bids. buildUnits
	// splits the subset space into balanced prefix work units — the old
	// one-partition-per-first-index scheme put the lion's share of the
	// space in partition 0, serializing the search on one worker — and
	// dispatchOrder runs cheap-spot-floor units first so the shared
	// atomic incumbent tightens while most of the space is still queued.
	// Workers keep a per-unit best and share only the monotonically-
	// tightening incumbent cost for pruning; the final merge walks units
	// in canonical (serial traversal) order with a strict < comparison,
	// which reproduces the serial first-strictly-better-wins tie-breaking
	// exactly (see searcher.searchBids for why pruning cannot disturb the
	// winner). Unit boundaries depend only on the grid shape, never on
	// the worker count, so plans are bit-identical at every Workers
	// value.
	gridLen := make([]int, len(groups))
	for i := range prepared {
		gridLen[i] = len(prepared[i])
	}
	units := buildUnits(gridLen, minSpot, kappa)
	order := dispatchOrder(units)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	if ex != nil {
		ex.Workers = workers
		ex.WorkUnits = len(units)
	}

	// Leaf memo: evaluated subset costs from previous optimizations of
	// unchanged shards. Only leaves whose every member group carries a
	// cache id are memoizable; grids too long to pack disable it.
	var leafMemo map[leafKey]model.Estimate
	var leafIDs []uint32
	if rb != nil && cfg.GridLevels <= 1<<leafBidBits && kappa <= maxLeafSubset {
		leafIDs = make([]uint32, len(groups))
		usable := false
		for i, e := range entries {
			if e != nil && e.id > 0 && e.id < maxLeafID {
				leafIDs[i] = e.id
				usable = true
			}
		}
		if usable {
			leafMemo = rb.cache.leafSnapshot()
		} else {
			leafIDs = nil
		}
	}

	// Cancellation: a watcher goroutine flips stop when ctx is done, and
	// every worker polls the flag on each bid-grid descent, so an
	// abandoned request stops burning CPU within roughly one cost-model
	// evaluation. Polling an atomic bool costs ~1ns against the ~µs
	// evaluation, which is why the flag is checked per grid point rather
	// than per unit.
	var stop atomic.Bool
	if done := ctx.Done(); done != nil {
		watch := make(chan struct{})
		defer close(watch)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-watch:
			}
		}()
	}

	// runSearch traverses every unit with the pruning incumbent seeded at
	// seed and merges in canonical order. It is invoked once warm, and a
	// second time cold if the warm seed proves inadmissible. Only the
	// incumbent is seeded; the acceptance threshold (searcher.localBound)
	// always starts from the on-demand baseline, so an admissible seed —
	// including one exactly equal to the optimum — changes which leaves
	// are pruned but never which of the surviving leaves is accepted.
	baselineCost := best.Est.Cost
	runSearch := func(seed float64) (bestUnit Result, found bool, evals, pruned, saved int) {
		incumbent := newSharedCost(seed)
		results := make([]unitResult, len(units))
		newSearcher := func() *searcher {
			return &searcher{
				cfg:       cfg,
				od:        od,
				prepared:  prepared,
				minSpot:   minSpot,
				kappa:     kappa,
				baseline:  baselineCost,
				incumbent: incumbent,
				stop:      &stop,
				leafMemo:  leafMemo,
				leafIDs:   leafIDs,
				subset:    make([]int, 0, kappa),
				pgs:       make([]*model.PreparedGroup, 0, kappa),
				bidIdx:    make([]int, kappa),
				partial:   make([]float64, kappa+1),
				suffixMin: make([]float64, kappa+1),
				leaves:    make([]int, kappa+1),
			}
		}
		var inserts []map[leafKey]model.Estimate
		if workers == 1 {
			// Serial fast path: one searcher drains the dispatch order
			// in-line, so the incumbent trajectory — and with it Evals and
			// Pruned — is a pure function of the Config.
			_, wsp := obs.StartSpan(ctx, "opt.search.worker")
			s := newSearcher()
			unitsRun, wevals, wpruned := 0, 0, 0
			for _, ui := range order {
				results[ui] = s.searchUnit(&units[ui])
				unitsRun++
				wevals += results[ui].evals
				wpruned += results[ui].pruned
			}
			if wsp != nil {
				wsp.AttrInt("units", int64(unitsRun))
				wsp.AttrInt("evals", int64(wevals))
				wsp.AttrInt("pruned", int64(wpruned))
				wsp.End()
			}
			inserts = append(inserts, s.leafNew)
		} else {
			tasks := make(chan int)
			var wg sync.WaitGroup
			searchers := make([]*searcher, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				s := newSearcher()
				searchers[w] = s
				go func() {
					defer wg.Done()
					_, wsp := obs.StartSpan(ctx, "opt.search.worker")
					unitsRun, wevals, wpruned := 0, 0, 0
					for ui := range tasks {
						results[ui] = s.searchUnit(&units[ui])
						unitsRun++
						wevals += results[ui].evals
						wpruned += results[ui].pruned
					}
					if wsp != nil {
						wsp.AttrInt("units", int64(unitsRun))
						wsp.AttrInt("evals", int64(wevals))
						wsp.AttrInt("pruned", int64(wpruned))
						wsp.End()
					}
				}()
			}
			for _, ui := range order {
				tasks <- ui
			}
			close(tasks)
			wg.Wait()
			for _, s := range searchers {
				inserts = append(inserts, s.leafNew)
			}
		}
		if rb != nil && leafIDs != nil {
			for _, batch := range inserts {
				rb.cache.mergeLeaves(batch)
			}
		}
		for i := range results {
			r := &results[i]
			evals += r.evals
			pruned += r.pruned
			saved += r.saved
			if r.found && (!found || r.best.Est.Cost < bestUnit.Est.Cost) {
				bestUnit = r.best
				found = true
			}
		}
		return bestUnit, found, evals, pruned, saved
	}

	// Warm start: seed the incumbent with the caller's known-achievable
	// cost when it beats the baseline. If the seed is admissible (≥ the
	// true optimum) the strict-> pruning can never cut an optimal leaf,
	// so the result is bit-identical to cold; if it is inadmissible the
	// search provably finds nothing at or below it — every surviving
	// cost then exceeds the seed, which is the detection below.
	seed := best.Est.Cost
	warm := !cfg.DisablePruning && cfg.InitialIncumbent > 0 && cfg.InitialIncumbent < seed
	if warm {
		seed = cfg.InitialIncumbent
	}

	sc.begin("subset_search")
	unitBest, found, sEvals, sPruned, sSaved := runSearch(seed)
	evals += sEvals
	saved += sSaved
	pruned := sPruned
	warmRetried := false
	if warm && ctx.Err() == nil {
		got := best.Est.Cost
		if found && unitBest.Est.Cost < got {
			got = unitBest.Est.Cost
		}
		if got > cfg.InitialIncumbent {
			// The hint was inadmissible: nothing achieved it, so pruning
			// may have cut the true optimum. Re-run cold from the
			// baseline; the retry dominates the cost of trusting a bad
			// hint and keeps the bit-identical guarantee unconditional.
			warmRetried = true
			sc.begin("subset_search_cold_retry")
			unitBest, found, sEvals, sPruned, sSaved = runSearch(best.Est.Cost)
			evals += sEvals
			saved += sSaved
			pruned += sPruned
		}
	}
	if found && unitBest.Est.Cost < best.Est.Cost {
		best = unitBest
	}
	best.Evals = evals
	best.Pruned = pruned
	best.SavedEvals = saved
	best.ReusedGroups = reusedGroups
	best.WarmRetried = warmRetried
	if ex != nil {
		ex.SavedEvals = saved
	}
	if err := ctx.Err(); err != nil {
		// The merge above still ran: the partial Result documents how far
		// the search got (and may hold a usable incumbent plan), but a
		// cancelled search makes no optimality claim.
		return finish(best, err)
	}
	return finish(best, nil)
}

// selectRelaxed is the select_on_demand stage: Formulas 12–13 at the
// configured slack, then a halving slack-relaxation chain down to zero
// before giving up, so a deadline that is feasible at all gets a fleet.
func selectRelaxed(cfg Config) (model.OnDemand, error) {
	od, err := SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, cfg.Slack)
	for slack := cfg.Slack / 2; err != nil && slack > 0.005; slack /= 2 {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, slack)
	}
	if err != nil {
		od, err = SelectOnDemand(cfg.OnDemandTypes, cfg.Profile, cfg.Deadline, 0)
	}
	return od, err
}

// sharedCost is the workers' shared incumbent: the cheapest plan cost
// found so far, stored as positive-float bits so a CAS loop can lower it
// monotonically without locks. For positive IEEE-754 floats the bit
// pattern orders identically to the value.
type sharedCost struct {
	bits atomic.Uint64
}

func newSharedCost(c float64) *sharedCost {
	s := &sharedCost{}
	s.bits.Store(math.Float64bits(c))
	return s
}

func (s *sharedCost) load() float64 { return math.Float64frombits(s.bits.Load()) }

func (s *sharedCost) lower(c float64) {
	bits := math.Float64bits(c)
	for {
		cur := s.bits.Load()
		if bits >= cur || s.bits.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// unitResult is one work unit's contribution to the final merge.
type unitResult struct {
	best   Result
	found  bool
	evals  int
	pruned int
	saved  int
}

// searcher is the per-worker search state: scratch buffers and an
// allocation-free evaluator, reused across every work unit the worker
// pulls. Nothing in it is shared; the only cross-worker communication is
// the incumbent cost.
type searcher struct {
	cfg       Config
	od        model.OnDemand
	prepared  [][]*model.PreparedGroup
	minSpot   []float64
	kappa     int
	baseline  float64
	incumbent *sharedCost
	stop      *atomic.Bool
	eval      model.Evaluator

	// leafMemo is the reuse cache's read-only snapshot of previously
	// evaluated leaves; leafIDs maps group index to its cache id (nil
	// disables the memo). leafNew buffers this worker's fresh
	// evaluations for a single merge after the search.
	leafMemo map[leafKey]model.Estimate
	leafIDs  []uint32
	leafNew  map[leafKey]model.Estimate
	// lastKey/lastKeyOK carry the key lookupLeaf built to the storeLeaf
	// that follows a miss.
	lastKey   leafKey
	lastKeyOK bool

	subset []int
	pgs    []*model.PreparedGroup
	// bidIdx[d] is the grid index of the bid chosen at depth d — the
	// leaf-memo key component alongside the group ids.
	bidIdx []int
	// partial[d] is the spot-cost sum of the groups placed at depths
	// < d; suffixMin[d] is the cheapest possible spot cost of the groups
	// at depths >= d; leaves[d] is the number of bid combinations below
	// depth d. All three are per-subset precomputations for the
	// branch-and-bound cut.
	partial   []float64
	suffixMin []float64
	leaves    []int

	best   Result
	found  bool
	evals  int
	pruned int
	saved  int
}

// searchUnit traverses one work unit — the subsets starting with
// u.prefix (just the prefix's own bid grid when !u.expand) — in the
// exact order the serial recursion visits them.
func (s *searcher) searchUnit(u *workUnit) unitResult {
	s.best, s.found = Result{}, false
	s.evals, s.pruned, s.saved = 0, 0, 0
	if s.stop.Load() {
		return unitResult{}
	}
	s.subset = append(s.subset[:0], u.prefix...)
	if u.expand {
		s.extend(u.prefix[len(u.prefix)-1] + 1)
	} else {
		s.searchSubset()
	}
	return unitResult{best: s.best, found: s.found, evals: s.evals, pruned: s.pruned, saved: s.saved}
}

// extend evaluates the current subset's bid grid, then grows the subset
// with every index above start, mirroring the serial recursion.
func (s *searcher) extend(start int) {
	if s.stop.Load() {
		return
	}
	s.searchSubset()
	if len(s.subset) == s.kappa {
		return
	}
	for i := start; i < len(s.prepared); i++ {
		s.subset = append(s.subset, i)
		s.extend(i + 1)
		s.subset = s.subset[:len(s.subset)-1]
	}
}

// searchSubset enumerates every grid-bid combination for the current
// subset with branch-and-bound cuts.
func (s *searcher) searchSubset() {
	n := len(s.subset)
	// leaves[d]: bid combinations in depths d..n-1; suffixMin[d]: spot
	// cost floor of depths d..n-1.
	s.leaves[n] = 1
	s.suffixMin[n] = 0
	for d := n - 1; d >= 0; d-- {
		s.leaves[d] = s.leaves[d+1] * len(s.prepared[s.subset[d]])
		s.suffixMin[d] = s.suffixMin[d+1] + s.minSpot[s.subset[d]]
	}
	if !s.cfg.DisablePruning && s.suffixMin[0] > s.incumbent.load() {
		// Even the cheapest bid choice for every member exceeds the
		// incumbent: skip the whole subset.
		s.pruned += s.leaves[0]
		return
	}
	s.partial[0] = 0
	s.pgs = s.pgs[:0]
	s.searchBids(0)
}

func (s *searcher) searchBids(depth int) {
	if depth == len(s.subset) {
		est, memoized := s.lookupLeaf()
		if !memoized {
			est = s.eval.EvaluatePrepared(s.pgs, s.od)
			s.evals++
			s.storeLeaf(est)
		}
		if s.cfg.MaxAllFail > 0 && est.PAllFail > s.cfg.MaxAllFail {
			return
		}
		if est.Time <= s.cfg.Deadline && est.Cost < s.localBound() {
			gps := make([]model.GroupPlan, len(s.pgs))
			for i, pg := range s.pgs {
				gps[i] = pg.GP
			}
			s.best = Result{Plan: model.Plan{Groups: gps, Recovery: s.od}, Est: est}
			s.found = true
			s.incumbent.lower(est.Cost)
		}
		return
	}
	for bi, pg := range s.prepared[s.subset[depth]] {
		if s.stop.Load() {
			return
		}
		s.bidIdx[depth] = bi
		bound := s.partial[depth] + pg.CostSpot() + s.suffixMin[depth+1]
		// A plan's cost is its groups' spot costs plus a non-negative
		// on-demand term, so bound is a true lower bound on every leaf
		// below this choice. Pruning only on strict > keeps equal-cost
		// plans alive: the eventual winner has cost equal to the final
		// incumbent, its bounds never strictly exceed a value the
		// incumbent (which only tightens) held at any earlier time, so
		// the winning leaf is always evaluated — which is what makes the
		// result independent of worker count and pruning alike.
		if !s.cfg.DisablePruning && bound > s.incumbent.load() {
			s.pruned += s.leaves[depth+1]
			continue
		}
		s.partial[depth+1] = s.partial[depth] + pg.CostSpot()
		s.pgs = append(s.pgs, pg)
		s.searchBids(depth + 1)
		s.pgs = s.pgs[:len(s.pgs)-1]
	}
}

// localBound is the acceptance threshold for the current partition: the
// partition's own best if it has one, else the pure-on-demand baseline.
// Acceptance must not consult the shared incumbent — another partition's
// equal-cost plan would otherwise block this one nondeterministically —
// so determinism comes from per-partition bests merged in index order.
func (s *searcher) localBound() float64 {
	if s.found {
		return s.best.Est.Cost
	}
	return s.baseline
}

// lookupLeaf consults the reuse memo for the current leaf (subset +
// bid choice). A hit returns the Estimate a fresh evaluation would
// produce bit-for-bit — the key includes every input the cost model
// reads (group state via cache id, bid via grid index, on-demand fleet)
// — so memoization can never change the plan, only skip work. It also
// primes lastKey for storeLeaf on a miss.
func (s *searcher) lookupLeaf() (model.Estimate, bool) {
	s.lastKeyOK = false
	if s.leafIDs == nil {
		return model.Estimate{}, false
	}
	n := len(s.subset)
	if n > maxLeafSubset {
		return model.Estimate{}, false
	}
	k := leafKey{od: odKeyFor(s.od), n: uint8(n)}
	for i := 0; i < n; i++ {
		id := s.leafIDs[s.subset[i]]
		if id == 0 {
			return model.Estimate{}, false
		}
		k.e[i] = id<<leafBidBits | uint32(s.bidIdx[i])
	}
	s.lastKey, s.lastKeyOK = k, true
	if est, ok := s.leafNew[k]; ok {
		s.saved++
		return est, true
	}
	if est, ok := s.leafMemo[k]; ok {
		s.saved++
		return est, true
	}
	return model.Estimate{}, false
}

// storeLeaf buffers a freshly evaluated leaf for the post-search memo
// merge.
func (s *searcher) storeLeaf(est model.Estimate) {
	if !s.lastKeyOK || len(s.leafNew) >= maxLeafEntries {
		return
	}
	if s.leafNew == nil {
		s.leafNew = make(map[leafKey]model.Estimate, 256)
	}
	s.leafNew[s.lastKey] = est
}

// buildGroups constructs the candidate circle groups. A candidate naming
// an instance type outside the market's catalog, or a market the trace
// set does not cover, is a caller error (typically a stale Candidates
// list) and is reported as such rather than panicking. With ex non-nil
// every candidate's keep/reject decision lands in the trail.
//
// With rb non-nil, each kept group gets a reuse entry alongside it: an
// existing one when the candidate's state fingerprint matches the cache
// (entry.prepared already derived), or a fresh unregistered one the
// bid_grid stage fills and stores. entries[i] is nil iff reuse is off.
func buildGroups(cfg Config, ex *Explain, rb *reuseBinding) ([]*model.Group, []*reuseEntry, error) {
	groups := make([]*model.Group, 0, len(cfg.Candidates))
	entries := make([]*reuseEntry, 0, len(cfg.Candidates))
	for _, key := range cfg.Candidates {
		it, ok := cfg.Market.Catalog().ByName(key.Type)
		if !ok {
			return nil, nil, fmt.Errorf("%w: candidate %v not in catalog", ErrNoCandidates, key)
		}
		tr, ok := cfg.Market.TraceFor(key)
		if !ok {
			return nil, nil, fmt.Errorf("%w: candidate %v has no price history in the market", ErrNoCandidates, key)
		}
		g := model.NewGroup(cfg.Profile, it, key.Zone, tr)
		// A group that cannot finish before the deadline even alone and
		// failure-free can still contribute checkpoints, but in practice
		// it only burns money; prune it like the paper's implementation.
		kept := float64(g.T) <= cfg.Deadline
		if kept {
			groups = append(groups, g)
			var entry *reuseEntry
			if rb != nil {
				st := rb.stateFor(cfg, key, g)
				if e, ok := rb.cache.lookupGroup(groupSlot{key: key, profile: cfg.Profile.Name}, st); ok {
					entry = e
				} else {
					entry = &reuseEntry{state: st, g: g}
				}
			}
			entries = append(entries, entry)
		}
		if ex != nil {
			d := CandidateDecision{
				Market:          g.Key.String(),
				Kept:            kept,
				StandaloneHours: float64(g.T),
			}
			if kept {
				d.Reason = "entered the κ-subset search"
			} else {
				d.Reason = fmt.Sprintf("standalone completion time %.1fh exceeds the %.1fh deadline even failure-free",
					float64(g.T), cfg.Deadline)
			}
			ex.Candidates = append(ex.Candidates, d)
		}
	}
	return groups, entries, nil
}
