package opt

import (
	"context"
	"math"

	"sompi/internal/model"
	"sompi/internal/replay"
)

// Adaptive is the paper's Algorithm 1 as a replay strategy: every
// optimization window of T_m hours it re-estimates the failure-rate
// functions from the latest price history, re-optimizes the residual work,
// executes one window of the resulting hybrid plan, and checkpoints the
// final state as the next start point. If at any window boundary the
// deadline can no longer be met on spot instances, the rest of the
// application runs on the fastest on-demand fleet.
type Adaptive struct {
	// Base parameterizes each per-window optimization. Base.Market must be
	// the full market (the strategy windows it for training itself);
	// Base.Deadline is ignored (the runner's deadline is used).
	Base Config
	// Window is T_m in hours; zero means DefaultWindow.
	Window float64
	// History is how many hours of price history each re-optimization
	// trains on; zero means 96 (see baselines.History).
	History float64
	// Label overrides the reported name (default "SOMPI").
	Label string
}

var _ replay.Strategy = (*Adaptive)(nil)

// Name implements replay.Strategy.
func (a *Adaptive) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "SOMPI"
}

// Run implements replay.Strategy, executing Algorithm 1 from absolute
// market hour start. The per-window state (progress, elapsed wall clock,
// accumulated cost) is carried by a replay.Session — the same vehicle the
// planner service uses — so the in-process and served adaptive loops stay
// behaviourally identical.
func (a *Adaptive) Run(r *replay.Runner, deadline, start float64) (replay.Outcome, error) {
	window := a.Window
	if window <= 0 {
		window = DefaultWindow
	}
	history := a.History
	if history <= 0 {
		history = 96
	}
	base := a.Base
	base.Profile = r.Profile
	base = base.withDefaults()

	sess := replay.NewSession(r, deadline, start)
	maxWindows := int(deadline/window) + 32 // hard stop against livelock

	for w := 0; w < maxWindows && sess.Progress < 1; w++ {
		leftover := sess.Remaining()
		resid := r.Profile.Scale(1 - sess.Progress)
		fastest := FastestOnDemand(base.OnDemandTypes, resid)

		// Train on the trailing History hours only (line 17: "update the
		// spot price trace with the spot price history in this window").
		trainStart := sess.Now() - history
		if trainStart < 0 {
			trainStart = 0
		}
		cfg := base
		cfg.Profile = resid
		cfg.Market = base.Market.Window(trainStart, sess.Now()-trainStart)
		cfg.Deadline = leftover

		// Algorithm 1 line 7: if the deadline cannot be satisfied, run the
		// remainder on on-demand instances. "Satisfied" is the model's
		// E[Time] <= leftover feasibility.
		res, err := OptimizeContext(context.Background(), cfg)
		if err != nil || leftover <= 0 {
			sess.Advance(model.Plan{Recovery: fastest}, math.Inf(1))
			return sess.Outcome(), nil
		}
		if len(res.Plan.Groups) == 0 {
			// The optimizer's best feasible plan is pure on-demand.
			sess.Advance(res.Plan, math.Inf(1))
			return sess.Outcome(), nil
		}

		// While a completely fruitless window would still leave time to
		// finish on the fastest on-demand fleet, explore one window and
		// re-plan. Once the deadline is too close for that guarantee,
		// commit to the current plan: run it to completion or to the
		// death of every group, then recover on-demand — the tail risk
		// the paper's tight-deadline runs accept ("very near deadline").
		safeWindow := leftover - fastest.T*1.02
		if safeWindow < 2 {
			// Re-optimize with a survival constraint: in the committed
			// window, losing every group means an on-demand recovery that
			// blows the deadline, so only high-confidence plans qualify.
			commitCfg := cfg
			commitCfg.MaxAllFail = 0.1
			if committed, err := OptimizeContext(context.Background(), commitCfg); err == nil && len(committed.Plan.Groups) > 0 {
				res = committed
			}
			if o := sess.Advance(res.Plan, math.Inf(1)); o.Completed {
				return sess.Outcome(), nil
			}
			break // all groups died: on-demand recovery below
		}

		o := sess.Advance(res.Plan, math.Min(window, safeWindow))
		if o.Completed {
			return sess.Outcome(), nil
		}
		if o.Hours <= 0 {
			break // no wall-clock motion: bail out below
		}
	}

	if sess.Progress < 1 {
		resid := r.Profile.Scale(1 - sess.Progress)
		fastest := FastestOnDemand(base.OnDemandTypes, resid)
		sess.Advance(model.Plan{Recovery: fastest}, math.Inf(1))
	}
	return sess.Outcome(), nil
}

// OneShot is SOMPI without update maintenance (the paper's w/o-MT
// ablation): optimize once from the history before the start point, then
// replay that single plan to completion.
type OneShot struct {
	Base    Config
	History float64
	Label   string
}

var _ replay.Strategy = (*OneShot)(nil)

// Name implements replay.Strategy.
func (s *OneShot) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "w/o-MT"
}

// Run implements replay.Strategy.
func (s *OneShot) Run(r *replay.Runner, deadline, start float64) (replay.Outcome, error) {
	history := s.History
	if history <= 0 {
		history = 96
	}
	cfg := s.Base
	cfg.Profile = r.Profile
	trainStart := math.Max(0, start-history)
	cfg.Market = s.Base.Market.Window(trainStart, start-trainStart)
	cfg.Deadline = deadline
	res, err := Optimize(cfg)
	if err != nil {
		return replay.Outcome{}, err
	}
	return r.RunToCompletion(res.Plan, start), nil
}
