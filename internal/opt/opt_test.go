package opt

import (
	"math"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/model"
)

func testMarket(seed uint64) *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, seed)
}

// smallConfig keeps optimization cheap for unit tests.
func smallConfig(m *cloud.Market, p app.Profile, deadline float64) Config {
	return Config{
		Profile:    p,
		Market:     m,
		Deadline:   deadline,
		Kappa:      2,
		GridLevels: 4,
		MaxGroups:  4,
	}
}

func TestSelectOnDemandPicksCheapestFeasible(t *testing.T) {
	p := app.BT()
	// Generous deadline: every type is feasible, so the cheapest fleet
	// (m1.small for compute-intensive BT) must win.
	od, err := SelectOnDemand(cloud.DefaultCatalog(), p, 1000, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if od.Instance.Name != cloud.M1Small.Name {
		t.Errorf("loose deadline picked %s, want m1.small", od.Instance.Name)
	}

	// Very tight deadline (2% over the fastest time): only the fastest
	// type fits.
	fast := FastestOnDemand(cloud.DefaultCatalog(), p)
	od, err = SelectOnDemand(cloud.DefaultCatalog(), p, fast.T*1.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	if od.Instance.Name != fast.Instance.Name {
		t.Errorf("tight deadline picked %s, want %s", od.Instance.Name, fast.Instance.Name)
	}
}

func TestOptimizeRelaxesSlackUnderTightDeadline(t *testing.T) {
	// 1.05x the fastest time is infeasible at 20% slack but must still
	// produce a plan (the paper evaluates exactly this deadline).
	m := testMarket(11)
	p := app.BT()
	fast := FastestOnDemand(cloud.DefaultCatalog(), p)
	cfg := smallConfig(m, p, fast.T*1.05)
	cfg.Slack = DefaultSlack
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatalf("tight deadline should relax slack, got %v", err)
	}
	if res.Est.Time > fast.T*1.05 {
		t.Errorf("expected time %v exceeds tight deadline %v", res.Est.Time, fast.T*1.05)
	}
}

func TestSelectOnDemandSlackShrinksBudget(t *testing.T) {
	p := app.BT()
	fast := FastestOnDemand(cloud.DefaultCatalog(), p)
	// Deadline exactly at the fastest time: feasible without slack,
	// infeasible with 20% slack.
	if _, err := SelectOnDemand(cloud.DefaultCatalog(), p, fast.T, 0); err != nil {
		t.Fatalf("zero slack should be feasible: %v", err)
	}
	if _, err := SelectOnDemand(cloud.DefaultCatalog(), p, fast.T, 0.2); err == nil {
		t.Fatal("20% slack at the fastest time should be infeasible")
	}
}

func TestSelectOnDemandInfeasible(t *testing.T) {
	if _, err := SelectOnDemand(cloud.DefaultCatalog(), app.BT(), 0.5, 0.2); err == nil {
		t.Fatal("absurd deadline should be infeasible")
	}
}

func TestFastestOnDemandBT(t *testing.T) {
	od := FastestOnDemand(cloud.DefaultCatalog(), app.BT())
	if od.Instance.Name != cloud.CC28XLarge.Name {
		t.Errorf("fastest BT fleet is %s, want cc2.8xlarge", od.Instance.Name)
	}
}

func TestPhiProperties(t *testing.T) {
	m := testMarket(1)
	g := model.NewGroup(app.BT(), cloud.M1Medium, cloud.ZoneA,
		m.Trace(cloud.M1Medium.Name, cloud.ZoneA))

	// Bid above the historical max never fails: checkpointing disabled.
	if f := Phi(g, g.MaxBid()+1); f != float64(g.T) {
		t.Errorf("Phi above max bid = %v, want T=%d", f, g.T)
	}
	// Any real bid yields an interval in (0, T].
	for _, bid := range BidGrid(g, 6) {
		f := Phi(g, bid)
		if f <= 0 || f > float64(g.T) {
			t.Errorf("Phi(%v) = %v outside (0, %d]", bid, f, g.T)
		}
	}
	// Young/Daly: a riskier (lower) bid must not lengthen the interval.
	grid := BidGrid(g, 6)
	for i := 1; i < len(grid); i++ {
		if Phi(g, grid[i]) > Phi(g, grid[i-1])+1e-9 {
			t.Errorf("Phi not monotone: Phi(%v)=%v > Phi(%v)=%v",
				grid[i], Phi(g, grid[i]), grid[i-1], Phi(g, grid[i-1]))
		}
	}
}

func TestBidGridShape(t *testing.T) {
	m := testMarket(2)
	g := model.NewGroup(app.BT(), cloud.M1Small, cloud.ZoneA,
		m.Trace(cloud.M1Small.Name, cloud.ZoneA))
	grid := BidGrid(g, 5)
	if len(grid) != 5 {
		t.Fatalf("grid size %d, want 5", len(grid))
	}
	if grid[0] != g.MaxBid() {
		t.Errorf("grid[0] = %v, want H = %v", grid[0], g.MaxBid())
	}
	for i := 1; i < len(grid); i++ {
		if math.Abs(grid[i]-grid[i-1]/2) > 1e-12 {
			t.Errorf("grid[%d] = %v, want half of %v", i, grid[i], grid[i-1])
		}
	}
}

func TestOptimizeProducesFeasiblePlan(t *testing.T) {
	m := testMarket(3)
	p := app.BT()
	baseline := FastestOnDemand(cloud.DefaultCatalog(), p)
	deadline := baseline.T * 1.5
	res, err := Optimize(smallConfig(m, p, deadline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Time > deadline {
		t.Errorf("expected time %v exceeds deadline %v", res.Est.Time, deadline)
	}
	if len(res.Plan.Groups) == 0 {
		t.Error("optimizer found no spot plan under a loose deadline")
	}
	if res.Evals <= 0 {
		t.Error("no evaluations recorded")
	}
}

func TestOptimizeBeatsPureOnDemand(t *testing.T) {
	m := testMarket(4)
	p := app.BT()
	deadline := FastestOnDemand(cloud.DefaultCatalog(), p).T * 1.5
	res, err := Optimize(smallConfig(m, p, deadline))
	if err != nil {
		t.Fatal(err)
	}
	od, err := SelectOnDemand(cloud.DefaultCatalog(), p, deadline, DefaultSlack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Cost >= od.FullCost() {
		t.Errorf("SOMPI expected cost $%.0f not below on-demand $%.0f",
			res.Est.Cost, od.FullCost())
	}
}

func TestOptimizeRespectsKappa(t *testing.T) {
	m := testMarket(5)
	p := app.BT()
	deadline := FastestOnDemand(cloud.DefaultCatalog(), p).T * 1.5
	cfg := smallConfig(m, p, deadline)
	cfg.Kappa = 1
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Groups) > 1 {
		t.Errorf("kappa=1 produced %d groups", len(res.Plan.Groups))
	}
}

func TestOptimizeMoreKappaNeverWorse(t *testing.T) {
	m := testMarket(6)
	p := app.BT()
	deadline := FastestOnDemand(cloud.DefaultCatalog(), p).T * 1.5
	cfg1 := smallConfig(m, p, deadline)
	cfg1.Kappa = 1
	cfg2 := smallConfig(m, p, deadline)
	cfg2.Kappa = 2
	r1, err := Optimize(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Est.Cost > r1.Est.Cost+1e-9 {
		t.Errorf("kappa=2 cost $%.2f worse than kappa=1 $%.2f", r2.Est.Cost, r1.Est.Cost)
	}
	if r2.Evals <= r1.Evals {
		t.Errorf("kappa=2 evals %d not above kappa=1 %d", r2.Evals, r1.Evals)
	}
}

func TestOptimizeInfeasibleDeadlineFallsBack(t *testing.T) {
	m := testMarket(7)
	p := app.BT()
	res, err := Optimize(smallConfig(m, p, 1)) // 1 hour: impossible
	if err != ErrNoFeasibleOnDemand {
		t.Fatalf("err = %v, want ErrNoFeasibleOnDemand", err)
	}
	if len(res.Plan.Groups) != 0 {
		t.Error("fallback plan should be pure on-demand")
	}
	if res.Plan.Recovery.Instance.Name != cloud.CC28XLarge.Name {
		t.Errorf("fallback fleet %s, want the fastest type", res.Plan.Recovery.Instance.Name)
	}
}

func TestOptimizeErrorsOnBadConfig(t *testing.T) {
	if _, err := Optimize(Config{Profile: app.BT(), Deadline: 10}); err == nil {
		t.Error("nil market accepted")
	}
	if _, err := Optimize(Config{Profile: app.BT(), Market: testMarket(8)}); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestOptimizeTightDeadlineUsesFastRecovery(t *testing.T) {
	m := testMarket(9)
	p := app.FT()
	fast := FastestOnDemand(cloud.DefaultCatalog(), p)
	deadline := fast.T * 1.3
	res, err := Optimize(smallConfig(m, p, deadline))
	if err != nil {
		t.Fatal(err)
	}
	// With only 30% headroom and 20% slack, only cc2.8xlarge can recover
	// a communication-intensive app in time.
	if res.Plan.Recovery.Instance.Name != cloud.CC28XLarge.Name {
		t.Errorf("recovery type %s, want cc2.8xlarge", res.Plan.Recovery.Instance.Name)
	}
}
