package opt

import "sompi/internal/cloud"

// Option mutates a Config before validation — the functional-option half
// of the v1 API. Options always win over the corresponding Config field,
// so a caller can keep a shared base Config and vary one knob per call.
type Option func(*Config)

// WithWorkers sets the concurrent subset-search worker count (0 =
// GOMAXPROCS, 1 = fully serial; the plan is identical either way).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithKappa sets the maximum number of circle groups a plan may use.
func WithKappa(k int) Option { return func(c *Config) { c.Kappa = k } }

// WithSlack sets the deadline fraction reserved for checkpoint/recovery
// overhead when sizing the on-demand fleet.
func WithSlack(s float64) Option { return func(c *Config) { c.Slack = s } }

// WithGridLevels sets the number of logarithmic bid-price points per
// group.
func WithGridLevels(n int) Option { return func(c *Config) { c.GridLevels = n } }

// WithMaxGroups caps how many candidate groups enter the κ-subset
// traversal.
func WithMaxGroups(n int) Option { return func(c *Config) { c.MaxGroups = n } }

// WithMaxAllFail rejects plans whose probability that every circle group
// dies exceeds p.
func WithMaxAllFail(p float64) Option { return func(c *Config) { c.MaxAllFail = p } }

// WithCandidates restricts the circle-group markets considered.
func WithCandidates(keys []cloud.MarketKey) Option {
	return func(c *Config) { c.Candidates = keys }
}

// WithOnDemandTypes restricts the recovery-fleet candidates.
func WithOnDemandTypes(types []cloud.InstanceType) Option {
	return func(c *Config) { c.OnDemandTypes = types }
}

// WithoutCheckpoints forces F = T on every group (the paper's w/o-CK
// ablation).
func WithoutCheckpoints() Option { return func(c *Config) { c.DisableCheckpoints = true } }

// WithoutPruning disables the branch-and-bound cuts, forcing exhaustive
// enumeration (benchmark and determinism harnesses only).
func WithoutPruning() Option { return func(c *Config) { c.DisablePruning = true } }

// WithExplain records the optimizer's decision trail into Result.Explain
// (per-candidate keep/reject reasons, per-stage durations, the selected
// subset). The plan itself is unaffected.
func WithExplain() Option { return func(c *Config) { c.Explain = true } }

// WithInitialIncumbent seeds the branch-and-bound incumbent with an
// externally known achievable cost (see Config.InitialIncumbent and
// WarmBound). The returned plan is bit-identical to a cold search's.
func WithInitialIncumbent(cost float64) Option {
	return func(c *Config) { c.InitialIncumbent = cost }
}

// WithReuse attaches a cross-optimization reuse cache (see Config.Reuse).
// The plan is unaffected; skipped work lands in Result.SavedEvals.
func WithReuse(cache *ReuseCache) Option { return func(c *Config) { c.Reuse = cache } }
