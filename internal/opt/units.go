package opt

import "sort"

// workUnit is one schedulable slice of the κ-subset space: the subsets
// that start with exactly this group-index prefix. expand=false means
// only the prefix subset itself (its bid grid); expand=true means the
// prefix plus every extension by higher indices, i.e. the whole subtree
// below it. Splitting by prefix keeps the serial recursion's visit
// order inside each unit, which is what the strict-< canonical-order
// merge needs for bit-identical plans at any worker count.
type workUnit struct {
	prefix []int
	expand bool
	// est is the unit's leaf count (bid combinations), the balance
	// measure the splitter equalizes.
	est float64
	// hint is the prefix's spot-cost floor; dispatching cheap-floor
	// units first tends to tighten the shared incumbent early.
	hint float64
}

// unit sizing targets: enough units that the largest is a small
// fraction of the space (so no worker becomes the critical path), but
// never so fine that units drop below a meaningful grain of leaves.
const (
	targetUnits  = 64
	minUnitGrain = 256
)

// buildUnits splits the subset space — all subsets of up to kappa of
// len(gridLen) groups — into balanced work units.
//
// The old first-index partitioning is the special case of stopping at
// prefix length 1, and it is heavily skewed: partition 0 contains every
// subset starting at 0, the lion's share of the space. buildUnits
// instead recursively splits any prefix whose subtree exceeds the grain
// into (a) the prefix's own subset and (b) one unit per child prefix,
// so unit sizes converge toward the grain regardless of skew.
//
// Unit boundaries depend only on (gridLen, kappa) — never on the worker
// count or timing — so the unit set, and therefore the merged result,
// is identical for every Workers value.
func buildUnits(gridLen []int, minSpot []float64, kappa int) []workUnit {
	n := len(gridLen)
	// ext[i][r]: leaves contributed by all subsets of up to r further
	// groups drawn from indices >= i (including the empty extension,
	// which contributes the prefix's own leaf product factor 1).
	ext := make([][]float64, n+1)
	for i := range ext {
		ext[i] = make([]float64, kappa+1)
	}
	for r := 0; r <= kappa; r++ {
		ext[n][r] = 1
	}
	for i := n - 1; i >= 0; i-- {
		ext[i][0] = 1
		for r := 1; r <= kappa; r++ {
			ext[i][r] = ext[i+1][r] + float64(gridLen[i])*ext[i+1][r-1]
		}
	}

	total := ext[0][kappa] - 1 // all non-empty subsets
	grain := total / targetUnits
	if grain < minUnitGrain {
		grain = minUnitGrain
	}

	var units []workUnit
	var emit func(prefix []int, prod, hint float64)
	emit = func(prefix []int, prod, hint float64) {
		last := prefix[len(prefix)-1]
		slots := kappa - len(prefix)
		subtree := prod * ext[last+1][slots]
		if subtree <= grain || slots == 0 || last == n-1 {
			units = append(units, workUnit{
				prefix: append([]int(nil), prefix...),
				expand: true,
				est:    subtree,
				hint:   hint,
			})
			return
		}
		// Too big: the prefix's own subset becomes one unit, each child
		// prefix recurses.
		units = append(units, workUnit{
			prefix: append([]int(nil), prefix...),
			est:    prod,
			hint:   hint,
		})
		for j := last + 1; j < n; j++ {
			emit(append(prefix, j), prod*float64(gridLen[j]), hint+minSpot[j])
		}
	}
	scratch := make([]int, 0, kappa)
	for i := 0; i < n; i++ {
		emit(append(scratch, i), float64(gridLen[i]), minSpot[i])
	}
	return units
}

// dispatchOrder returns unit indices in execution order: ascending
// spot-cost floor, so the likeliest-cheap regions run first and the
// shared incumbent tightens while most of the space is still queued.
// Ties break on canonical (slice) order. The order affects only how
// fast pruning bites, never the merged result — that merge always walks
// canonical order.
func dispatchOrder(units []workUnit) []int {
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return units[order[a]].hint < units[order[b]].hint
	})
	return order
}
