package opt

import (
	"context"
	"time"

	"sompi/internal/obs"
)

// Explain is the optimizer's decision trail: which candidate circle
// groups were enumerated and why each was kept or rejected, how long
// every pipeline stage took, and what the search finally selected. It is
// built only when Config.Explain is set — the disabled path records
// nothing and allocates nothing — and rides on Result.Explain, which is
// what /v1/plan?explain=1 and `sompi explain` render.
type Explain struct {
	// Kappa, GridLevels and Workers are the effective (defaulted) search
	// knobs the trail was produced under.
	Kappa      int `json:"kappa"`
	GridLevels int `json:"grid_levels"`
	Workers    int `json:"workers"`
	// BaselineCost is the pure on-demand incumbent every spot plan had to
	// beat.
	BaselineCost float64 `json:"baseline_cost"`
	// Stages are the pipeline stages in execution order with wall-clock
	// durations.
	Stages []Stage `json:"stages"`
	// Candidates holds one decision per enumerated (type, zone) market.
	Candidates []CandidateDecision `json:"candidates"`
	// Selected names the markets of the winning plan's circle groups
	// (empty means pure on-demand won).
	Selected []string `json:"selected"`
	// WorkUnits is how many balanced prefix units the subset space was
	// split into for the worker pool.
	WorkUnits int `json:"work_units,omitempty"`
	// Evals and Pruned mirror Result's search-effort counters;
	// SavedEvals mirrors Result.SavedEvals (reuse-memo hits).
	Evals      int `json:"evals"`
	Pruned     int `json:"pruned"`
	SavedEvals int `json:"saved_evals,omitempty"`
	// TotalNs is the whole optimization's wall clock.
	TotalNs int64 `json:"total_ns"`
}

// Stage is one timed pipeline stage.
type Stage struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
}

// CandidateDecision records why one candidate market was kept in — or
// rejected from — the κ-subset traversal.
type CandidateDecision struct {
	// Market is the candidate's "type/zone" key.
	Market string `json:"market"`
	// Kept reports whether the candidate entered the subset traversal;
	// Selected whether it made the winning plan.
	Kept     bool `json:"kept"`
	Selected bool `json:"selected,omitempty"`
	// Reason is the human-readable rejection (or retention) rationale.
	Reason string `json:"reason"`
	// StandaloneHours is the group's failure-free solo completion time.
	StandaloneHours float64 `json:"standalone_hours,omitempty"`
	// StandaloneCost is the group's best solo expected cost across the
	// bid grid (computed only when the MaxGroups ranking ran).
	StandaloneCost float64 `json:"standalone_cost,omitempty"`
}

// stageClock times the optimizer's pipeline stages, mirroring each one
// into an Explain entry and an obs span. A nil *stageClock (no explain
// payload requested and no collector installed) costs nothing: every
// method returns immediately and no clock is read.
type stageClock struct {
	ctx      context.Context
	ex       *Explain
	cur      *obs.Span
	curName  string
	curStart time.Time
}

// newStageClock returns nil when both consumers are absent, which is the
// disabled fast path the -obscheck benchmark budget protects.
func newStageClock(ctx context.Context, ex *Explain) *stageClock {
	if ex == nil && obs.CollectorFrom(ctx) == nil {
		return nil
	}
	return &stageClock{ctx: ctx, ex: ex}
}

// begin closes the current stage (if any) and opens the next.
func (sc *stageClock) begin(name string) {
	if sc == nil {
		return
	}
	sc.close()
	sc.curName = name
	sc.curStart = time.Now()
	_, sc.cur = obs.StartSpan(sc.ctx, "opt."+name)
}

// close ends the current stage, recording its duration.
func (sc *stageClock) close() {
	if sc == nil || sc.curName == "" {
		return
	}
	if sc.ex != nil {
		sc.ex.Stages = append(sc.ex.Stages, Stage{sc.curName, time.Since(sc.curStart).Nanoseconds()})
	}
	sc.cur.End()
	sc.cur = nil
	sc.curName = ""
}
