// Package model implements the paper's cost model (Section 3): circle
// groups, hybrid spot/on-demand plans, the remaining-work Ratio function
// (Formula 7), and estimators for the expected monetary cost (Formulas
// 2–6) and expected execution time (Formulas 8–11) of a plan.
//
// Two evaluators are provided. Evaluate computes the expectations exactly
// in O(K·T) per plan by exploiting the independence of per-group failure
// times: the spot cost is separable per group, and the on-demand
// cost/time depend only on min_i Ratio_i and max_i spot-time, whose
// expectations follow from survival-function products. EvaluateBrute
// (brute.go) enumerates the joint failure-time space O(T^K) exactly as
// the paper formulates it; tests assert the two agree to float precision.
//
// Because the optimizer evaluates hundreds of thousands of bid vectors,
// the per-(group, bid) work — failure distribution, expected price, the
// Ratio and spot-time distributions with their survival/CDF arrays — is
// captured once in a PreparedGroup and reused across plans.
package model

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/failure"
	"sompi/internal/trace"
)

// Group is a circle group: spot instances of one type in one availability
// zone, sized and profiled for a specific application.
type Group struct {
	// Key names the market the group draws instances from.
	Key cloud.MarketKey
	// Instance is the group's instance type.
	Instance cloud.InstanceType
	// M is the number of instances (the paper's M_i = ceil(N/cores)).
	M int
	// T is the productive execution time in integer hours (the paper's
	// T_i; failure times are discretized to [0, T]).
	T int
	// O is the overhead of one coordinated checkpoint in hours.
	O float64
	// R is the recovery overhead in hours.
	R float64
	// Hist is the price history used for failure-rate and expected-price
	// estimation.
	Hist *trace.Trace

	// The per-bid derived quantities (failure distribution, expected
	// price, MTTF) are cached in two tiers. warm is an immutable snapshot
	// published by Prewarm and read without synchronization — the hot
	// path once the optimizer has warmed the bid grid. cold catches any
	// bid outside the warmed set under mu, so a Group stays correct (if
	// slower) for ad-hoc lookups from concurrent goroutines.
	warm atomic.Pointer[groupCaches]
	mu   sync.RWMutex
	cold groupCaches
}

// groupCaches holds the lazily-derived per-bid quantities of one Group.
type groupCaches struct {
	dist  map[float64]*failure.Dist
	price map[float64]float64
	mttf  map[float64]float64
}

func newGroupCaches(n int) groupCaches {
	return groupCaches{
		dist:  make(map[float64]*failure.Dist, n),
		price: make(map[float64]float64, n),
		mttf:  make(map[float64]float64, n),
	}
}

// NewGroup builds the circle group for running profile on instances of
// type it in the market described by hist.
func NewGroup(p app.Profile, it cloud.InstanceType, zone string, hist *trace.Trace) *Group {
	return &Group{
		Key:      cloud.MarketKey{Type: it.Name, Zone: zone},
		Instance: it,
		M:        it.InstancesFor(p.Procs),
		T:        app.EstimateHoursInt(p, it),
		O:        app.CheckpointHours(p, it),
		R:        app.RecoveryHours(p, it),
		Hist:     hist,
	}
}

// Prewarm derives and publishes the failure distribution, expected price
// and MTTF for every bid in bids. After it returns, lookups for those
// bids are lock-free; bids outside the warmed set fall back to the
// mutex-protected cold cache. Prewarm is intended for the optimizer's
// single-threaded prepare phase (warming the whole bid grid before the
// parallel search starts); concurrent Prewarm calls are safe but each
// snapshot supersedes the last, so racing warms may recompute work.
func (g *Group) Prewarm(bids []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w := newGroupCaches(len(bids))
	if old := g.warm.Load(); old != nil {
		for k, v := range old.dist {
			w.dist[k] = v
		}
		for k, v := range old.price {
			w.price[k] = v
		}
		for k, v := range old.mttf {
			w.mttf[k] = v
		}
	}
	for _, bid := range bids {
		if _, ok := w.dist[bid]; !ok {
			w.dist[bid] = failure.Estimate(g.Hist, bid, g.T)
		}
		if _, ok := w.price[bid]; !ok {
			w.price[bid] = failure.ExpectedSpotPrice(g.Hist, bid)
		}
		if _, ok := w.mttf[bid]; !ok {
			w.mttf[bid] = failure.MTTF(g.Hist, bid)
		}
	}
	g.warm.Store(&w)
}

// Dist returns the failure-time distribution for the given bid, cached.
func (g *Group) Dist(bid float64) *failure.Dist {
	if w := g.warm.Load(); w != nil {
		if d, ok := w.dist[bid]; ok {
			return d
		}
	}
	g.mu.RLock()
	d, ok := g.cold.dist[bid]
	g.mu.RUnlock()
	if ok {
		return d
	}
	d = failure.Estimate(g.Hist, bid, g.T)
	g.mu.Lock()
	defer g.mu.Unlock()
	if prev, ok := g.cold.dist[bid]; ok { // lost the compute race
		return prev
	}
	if g.cold.dist == nil {
		g.cold.dist = make(map[float64]*failure.Dist)
	}
	g.cold.dist[bid] = d
	return d
}

// ExpectedPrice reports S_i(bid), the mean price paid while running.
func (g *Group) ExpectedPrice(bid float64) float64 {
	if w := g.warm.Load(); w != nil {
		if s, ok := w.price[bid]; ok {
			return s
		}
	}
	g.mu.RLock()
	s, ok := g.cold.price[bid]
	g.mu.RUnlock()
	if ok {
		return s
	}
	s = failure.ExpectedSpotPrice(g.Hist, bid)
	g.mu.Lock()
	defer g.mu.Unlock()
	if prev, ok := g.cold.price[bid]; ok {
		return prev
	}
	if g.cold.price == nil {
		g.cold.price = make(map[float64]float64)
	}
	g.cold.price[bid] = s
	return s
}

// MTTF reports the mean time to out-of-bid at the given bid, cached.
func (g *Group) MTTF(bid float64) float64 {
	if w := g.warm.Load(); w != nil {
		if m, ok := w.mttf[bid]; ok {
			return m
		}
	}
	g.mu.RLock()
	m, ok := g.cold.mttf[bid]
	g.mu.RUnlock()
	if ok {
		return m
	}
	m = failure.MTTF(g.Hist, bid)
	g.mu.Lock()
	defer g.mu.Unlock()
	if prev, ok := g.cold.mttf[bid]; ok {
		return prev
	}
	if g.cold.mttf == nil {
		g.cold.mttf = make(map[float64]float64)
	}
	g.cold.mttf[bid] = m
	return m
}

// MaxBid reports H_i, the highest historical price — the top of the bid
// search space (a bid at H_i is "terminated in extremely low probability").
func (g *Group) MaxBid() float64 { return g.Hist.Max() }

// GroupPlan is one group with its chosen bid price and checkpoint
// interval.
type GroupPlan struct {
	Group *Group
	// Bid is the bid price P_i in $/instance-hour.
	Bid float64
	// Interval is the checkpoint interval F_i in hours. Interval >= T
	// means no checkpoints are taken (the paper's F_i = T_i convention).
	Interval float64
}

// Checkpoints reports how many checkpoints have been taken by hour t,
// the paper's ⌊t/F⌋ (zero when checkpointing is disabled).
func (gp GroupPlan) Checkpoints(t int) int {
	if gp.Interval >= float64(gp.Group.T) || gp.Interval <= 0 {
		return 0
	}
	return int(math.Floor(float64(t) / gp.Interval))
}

// SpotTime reports the wall-clock hours the group has consumed by
// productive hour t: t plus checkpoint overhead (Formula 5's
// t_i + O_i·⌊t_i/F_i⌋).
func (gp GroupPlan) SpotTime(t int) float64 {
	return float64(t) + gp.Group.O*float64(gp.Checkpoints(t))
}

// Ratio reports the fraction of the application still to execute when the
// group dies at hour t (Formula 7): 1 before the first checkpoint, 0 on
// completion, otherwise the unsaved work plus recovery overhead relative
// to the full run.
func (gp GroupPlan) Ratio(t int) float64 {
	T := float64(gp.Group.T)
	if t >= gp.Group.T {
		return 0
	}
	n := gp.Checkpoints(t)
	if n == 0 {
		return 1
	}
	rem := (T - float64(n)*gp.Interval + gp.Group.R) / T
	if rem > 1 {
		rem = 1
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// OnDemand is the selected on-demand recovery configuration (the paper's
// d*, with T, D, M folded in).
type OnDemand struct {
	Instance cloud.InstanceType
	// M is the number of instances.
	M int
	// T is the full execution time of the application on this fleet in
	// hours.
	T float64
}

// NewOnDemand sizes an on-demand fleet of type it for profile p.
func NewOnDemand(p app.Profile, it cloud.InstanceType) OnDemand {
	return OnDemand{Instance: it, M: it.InstancesFor(p.Procs), T: app.EstimateHours(p, it)}
}

// Rate reports the fleet's cost per hour.
func (o OnDemand) Rate() float64 { return o.Instance.OnDemand * float64(o.M) }

// FullCost reports the cost of a complete from-scratch run (Formula 12).
func (o OnDemand) FullCost() float64 { return o.Rate() * o.T }

// Plan is a complete hybrid execution plan: replicated spot circle groups
// plus the on-demand recovery fleet.
type Plan struct {
	Groups   []GroupPlan
	Recovery OnDemand
}

// Validate reports an error if the plan is structurally unsound.
func (p Plan) Validate() error {
	for i, gp := range p.Groups {
		if gp.Group == nil {
			return fmt.Errorf("model: plan group %d is nil", i)
		}
		if gp.Bid <= 0 {
			return fmt.Errorf("model: plan group %d has non-positive bid %v", i, gp.Bid)
		}
		if gp.Interval <= 0 {
			return fmt.Errorf("model: plan group %d has non-positive interval %v", i, gp.Interval)
		}
	}
	if p.Recovery.M <= 0 || p.Recovery.T <= 0 {
		return fmt.Errorf("model: plan has no usable on-demand recovery")
	}
	return nil
}

// Estimate is the output of a plan evaluation.
type Estimate struct {
	// Cost is E[Cost(P,F,d)] in dollars; Time is E[Time(P,F,d)] in hours.
	Cost, Time float64
	// CostSpot/CostOD and TimeSpot/TimeOD split the expectations into
	// their spot and on-demand components (Formulas 4 and 9).
	CostSpot, CostOD float64
	TimeSpot, TimeOD float64
	// PAllFail is the probability that every circle group dies before
	// completing, i.e. that on-demand recovery runs at all.
	PAllFail float64
	// EMinRatio is the expected remaining-work fraction recovered
	// on-demand, E[min_i Ratio_i].
	EMinRatio float64
}

// PreparedGroup captures everything plan evaluation needs from one
// (group, bid, interval) triple. Building it costs O(T); combining
// prepared groups into a plan estimate costs O(K·T) with no distribution
// re-derivation, which is what makes the optimizer's bid-grid enumeration
// affordable.
type PreparedGroup struct {
	GP GroupPlan
	// costSpot is S_i · E[t + O⌊t/F⌋] · M_i, this group's separable
	// contribution to the expected spot cost.
	costSpot float64
	// complete is P(t_i = T_i).
	complete float64
	// Ratio distribution: ascending distinct values; ratioTail[j] =
	// P(Ratio > ratioVals[j-1]) with ratioTail[0] = 1.
	ratioVals, ratioTail []float64
	// Spot-time distribution: ascending distinct values; timeCDF[j] =
	// P(SpotTime <= timeVals[j-1]) with timeCDF[0] = 0.
	timeVals, timeCDF []float64
}

// CostSpot reports the group's separable contribution to the plan's
// expected spot cost — a lower bound on the cost of any plan containing
// this prepared group, which is what the optimizer's branch-and-bound
// pruning keys on.
func (pg *PreparedGroup) CostSpot() float64 { return pg.costSpot }

// Prepare evaluates the per-group distributions for one bid/interval
// choice.
func Prepare(gp GroupPlan) *PreparedGroup {
	d := gp.Group.Dist(gp.Bid)
	pg := &PreparedGroup{GP: gp, complete: d.Complete()}

	eSpot := 0.0
	for t := 0; t <= gp.Group.T; t++ {
		eSpot += d.P[t] * gp.SpotTime(t)
	}
	pg.costSpot = gp.Group.ExpectedPrice(gp.Bid) * eSpot * float64(gp.Group.M)

	pg.ratioVals, pg.ratioTail = tailDist(gp.Group.T, d, gp.Ratio)
	var timeProbs []float64
	pg.timeVals, timeProbs = sortedDist(gp.Group.T, d, gp.SpotTime)
	pg.timeCDF = make([]float64, len(pg.timeVals)+1)
	for j, p := range timeProbs {
		pg.timeCDF[j+1] = pg.timeCDF[j] + p
	}
	return pg
}

// sortedDist maps the failure-time distribution through f and returns
// ascending distinct values with their probabilities.
func sortedDist(T int, d *failure.Dist, f func(int) float64) (vals, probs []float64) {
	type vp struct{ v, p float64 }
	tmp := make([]vp, 0, T+1)
	for t := 0; t <= T; t++ {
		if d.P[t] == 0 {
			continue
		}
		tmp = append(tmp, vp{f(t), d.P[t]})
	}
	// Insertion sort: inputs are near-sorted (SpotTime ascending, Ratio
	// mostly descending), and T is at most ~100.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].v < tmp[j-1].v; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	for _, e := range tmp {
		if n := len(vals); n > 0 && vals[n-1] == e.v {
			probs[n-1] += e.p
		} else {
			vals = append(vals, e.v)
			probs = append(probs, e.p)
		}
	}
	return vals, probs
}

// tailDist is sortedDist plus the survival array tail[j] = P(X > vals[j-1]).
func tailDist(T int, d *failure.Dist, f func(int) float64) (vals, tail []float64) {
	vals, probs := sortedDist(T, d, f)
	tail = make([]float64, len(vals)+1)
	tail[0] = 1
	for j, p := range probs {
		tail[j+1] = tail[j] - p
		if tail[j+1] < 0 {
			tail[j+1] = 0
		}
	}
	return vals, tail
}

// Evaluate computes the expected cost and time of the plan exactly.
// A plan with no groups is a pure on-demand run.
func Evaluate(p Plan) Estimate {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	pgs := make([]*PreparedGroup, len(p.Groups))
	for i, gp := range p.Groups {
		pgs[i] = Prepare(gp)
	}
	return EvaluatePrepared(pgs, p.Recovery)
}

// EvaluatePrepared combines prepared groups with a recovery fleet.
func EvaluatePrepared(pgs []*PreparedGroup, od OnDemand) Estimate {
	var e Evaluator
	return e.EvaluatePrepared(pgs, od)
}

// Evaluator evaluates prepared plans while reusing its scratch buffers,
// making each evaluation allocation-free. The optimizer's search workers
// each own one (an Evaluator must not be shared between goroutines); the
// package-level EvaluatePrepared remains for one-off callers.
type Evaluator struct {
	idx []int
}

// scratch returns a zeroed index buffer of length n.
func (e *Evaluator) scratch(n int) []int {
	if cap(e.idx) < n {
		e.idx = make([]int, n)
	}
	e.idx = e.idx[:n]
	for i := range e.idx {
		e.idx[i] = 0
	}
	return e.idx
}

// EvaluatePrepared combines prepared groups with a recovery fleet.
func (e *Evaluator) EvaluatePrepared(pgs []*PreparedGroup, od OnDemand) Estimate {
	if len(pgs) == 0 {
		full := od.Rate() * od.T
		return Estimate{
			Cost: full, CostOD: full,
			Time: od.T, TimeOD: od.T,
			PAllFail: 1, EMinRatio: 1,
		}
	}
	var est Estimate
	est.PAllFail = 1
	for _, pg := range pgs {
		est.CostSpot += pg.costSpot
		est.PAllFail *= 1 - pg.complete
	}
	est.EMinRatio = expectedMin(pgs, e.scratch(len(pgs)))
	est.TimeSpot = expectedMax(pgs, e.scratch(len(pgs)))
	est.CostOD = est.EMinRatio * od.T * od.Rate()
	est.TimeOD = est.EMinRatio * od.T
	est.Cost = est.CostSpot + est.CostOD
	est.Time = est.TimeSpot + est.TimeOD
	return est
}

// expectedMin computes E[min_i Ratio_i] for independent groups via
// E[min] = ∫ Π_i P(Ratio_i > x) dx, walking the merged support points
// without materializing them. idx is caller-supplied zeroed scratch of
// length len(pgs).
func expectedMin(pgs []*PreparedGroup, idx []int) float64 {
	prev, e := 0.0, 0.0
	for {
		next := math.Inf(1)
		for i, pg := range pgs {
			for idx[i] < len(pg.ratioVals) && pg.ratioVals[idx[i]] <= prev {
				idx[i]++
			}
			if idx[i] < len(pg.ratioVals) && pg.ratioVals[idx[i]] < next {
				next = pg.ratioVals[idx[i]]
			}
		}
		if math.IsInf(next, 1) {
			return e
		}
		prod := 1.0
		for i, pg := range pgs {
			prod *= pg.ratioTail[idx[i]]
		}
		e += (next - prev) * prod
		prev = next
	}
}

// expectedMax computes E[max_i SpotTime_i] via
// E[max] = ∫ (1 − Π_i P(SpotTime_i <= x)) dx. idx is caller-supplied
// zeroed scratch of length len(pgs).
func expectedMax(pgs []*PreparedGroup, idx []int) float64 {
	prev, e := 0.0, 0.0
	for {
		next := math.Inf(1)
		for i, pg := range pgs {
			for idx[i] < len(pg.timeVals) && pg.timeVals[idx[i]] <= prev {
				idx[i]++
			}
			if idx[i] < len(pg.timeVals) && pg.timeVals[idx[i]] < next {
				next = pg.timeVals[idx[i]]
			}
		}
		if math.IsInf(next, 1) {
			return e
		}
		prod := 1.0
		for i, pg := range pgs {
			prod *= pg.timeCDF[idx[i]]
		}
		e += (next - prev) * (1 - prod)
		prev = next
	}
}
