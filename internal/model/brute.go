package model

import "math"

// EvaluateBrute computes the same expectations as Evaluate by enumerating
// the joint failure-time space, exactly as the paper formulates Formulas
// 2–11: every combination of per-group failure times t⃗ is weighted by
// Π_i f_i(P_i, t_i). Its cost is O(Π_i (T_i+1)), so it is only usable for
// small plans; it exists as the ground-truth oracle for Evaluate and for
// the §5.4.1 model-accuracy study.
func EvaluateBrute(p Plan) Estimate {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(p.Groups) == 0 {
		return Evaluate(p)
	}
	dists := make([][]float64, len(p.Groups))
	for i, gp := range p.Groups {
		dists[i] = gp.Group.Dist(gp.Bid).P
	}

	var est Estimate
	ts := make([]int, len(p.Groups))
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if w == 0 {
			return
		}
		if i == len(p.Groups) {
			spotCost := 0.0
			spotTime := 0.0
			minRatio := math.Inf(1)
			allFail := true
			for j, gp := range p.Groups {
				st := gp.SpotTime(ts[j])
				spotCost += gp.Group.ExpectedPrice(gp.Bid) * st * float64(gp.Group.M)
				if st > spotTime {
					spotTime = st
				}
				if r := gp.Ratio(ts[j]); r < minRatio {
					minRatio = r
				}
				if ts[j] >= gp.Group.T {
					allFail = false
				}
			}
			est.CostSpot += w * spotCost
			est.TimeSpot += w * spotTime
			est.CostOD += w * minRatio * p.Recovery.T * p.Recovery.Rate()
			est.TimeOD += w * minRatio * p.Recovery.T
			est.EMinRatio += w * minRatio
			if allFail {
				est.PAllFail += w
			}
			return
		}
		for t := 0; t < len(dists[i]); t++ {
			ts[i] = t
			rec(i+1, w*dists[i][t])
		}
	}
	rec(0, 1)
	est.Cost = est.CostSpot + est.CostOD
	est.Time = est.TimeSpot + est.TimeOD
	return est
}
