package model

import (
	"math"
	"sync"
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
)

// TestGroupCachesConcurrent hammers one shared Group's per-bid caches
// from many goroutines, mixing cold lookups, warm lookups and a
// concurrent Prewarm. Run under -race this is the proof that the
// two-tier cache is sound; the value assertions prove every racer sees
// the same derived numbers.
func TestGroupCachesConcurrent(t *testing.T) {
	m := testMarket(5)
	g := NewGroup(app.BT(), cloud.M1Medium, cloud.ZoneA, m.Trace(cloud.M1Medium.Name, cloud.ZoneA))
	bids := []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64}
	g.Prewarm(bids[:3]) // half warm, half cold

	// Reference values computed single-threaded on a cache-equivalent
	// twin group.
	ref := resetCache(g)
	wantPrice := make([]float64, len(bids))
	wantMTTF := make([]float64, len(bids))
	wantComplete := make([]float64, len(bids))
	for i, bid := range bids {
		wantPrice[i] = ref.ExpectedPrice(bid)
		wantMTTF[i] = ref.MTTF(bid)
		wantComplete[i] = ref.Dist(bid).Complete()
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w == 0 {
				g.Prewarm(bids) // concurrent re-warm must not disturb readers
			}
			for rep := 0; rep < 20; rep++ {
				for i, bid := range bids {
					if got := g.ExpectedPrice(bid); got != wantPrice[i] {
						errs <- "ExpectedPrice diverged"
						return
					}
					if got := g.MTTF(bid); got != wantMTTF[i] {
						errs <- "MTTF diverged"
						return
					}
					if got := g.Dist(bid).Complete(); got != wantComplete[i] {
						errs <- "Dist diverged"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestEvaluatorMatchesPackageFunction asserts the scratch-reusing
// Evaluator returns exactly what the allocating package function does,
// across repeated calls with different plan widths (the reuse pattern of
// the optimizer's workers).
func TestEvaluatorMatchesPackageFunction(t *testing.T) {
	m := testMarket(6)
	od := defaultRecovery()
	var pgs []*PreparedGroup
	for _, zone := range cloud.DefaultZones() {
		g := NewGroup(app.BT(), cloud.M1Medium, zone, m.Trace(cloud.M1Medium.Name, zone))
		pgs = append(pgs, Prepare(GroupPlan{Group: g, Bid: 0.05, Interval: 3}))
	}
	var ev Evaluator
	for n := len(pgs); n >= 0; n-- { // shrinking widths stress scratch reslicing
		want := EvaluatePrepared(pgs[:n], od)
		got := ev.EvaluatePrepared(pgs[:n], od)
		if got != want {
			t.Errorf("width %d: Evaluator %+v != package %+v", n, got, want)
		}
		if again := ev.EvaluatePrepared(pgs[:n], od); again != want {
			t.Errorf("width %d: second reuse diverged", n)
		}
	}
}

// TestEvaluatorAllocationFree verifies the optimizer's inner loop does
// not allocate per evaluation once the Evaluator's scratch has grown.
func TestEvaluatorAllocationFree(t *testing.T) {
	m := testMarket(7)
	od := defaultRecovery()
	var pgs []*PreparedGroup
	for _, zone := range cloud.DefaultZones() {
		g := NewGroup(app.BT(), cloud.M1Medium, zone, m.Trace(cloud.M1Medium.Name, zone))
		pgs = append(pgs, Prepare(GroupPlan{Group: g, Bid: 0.05, Interval: 3}))
	}
	var ev Evaluator
	ev.EvaluatePrepared(pgs, od) // grow scratch
	allocs := testing.AllocsPerRun(100, func() {
		ev.EvaluatePrepared(pgs, od)
	})
	if allocs > 0 {
		t.Errorf("EvaluatePrepared allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPrewarmMatchesColdPath asserts warm and cold lookups derive the
// same quantities.
func TestPrewarmMatchesColdPath(t *testing.T) {
	m := testMarket(8)
	cold := NewGroup(app.BT(), cloud.C3XLarge, cloud.ZoneB, m.Trace(cloud.C3XLarge.Name, cloud.ZoneB))
	warm := resetCache(cold)
	bids := []float64{0.1, 0.2, 0.4}
	warm.Prewarm(bids)
	for _, bid := range bids {
		if a, b := cold.ExpectedPrice(bid), warm.ExpectedPrice(bid); a != b {
			t.Errorf("ExpectedPrice(%v): cold %v warm %v", bid, a, b)
		}
		if a, b := cold.MTTF(bid), warm.MTTF(bid); a != b {
			t.Errorf("MTTF(%v): cold %v warm %v", bid, a, b)
		}
		a, b := cold.Dist(bid), warm.Dist(bid)
		if a.Complete() != b.Complete() || math.Abs(a.Survival(1)-b.Survival(1)) > 0 {
			t.Errorf("Dist(%v) diverged", bid)
		}
	}
}
