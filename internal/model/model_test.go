package model

import (
	"math"
	"testing"
	"testing/quick"

	"sompi/internal/app"
	"sompi/internal/cloud"
	"sompi/internal/stats"
	"sompi/internal/trace"
)

func testMarket(seed uint64) *cloud.Market {
	return cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, seed)
}

// smallGroup builds a group with an artificially small T so brute-force
// enumeration stays cheap.
func smallGroup(seed uint64, zone string, T int) *Group {
	m := testMarket(seed)
	g := NewGroup(app.BT(), cloud.M1Medium, zone, m.Trace(cloud.M1Medium.Name, zone))
	g.T = T
	return resetCache(g)
}

// resetCache rebuilds the group without its caches (the horizon changed
// after NewGroup); a Group must not be copied once used, so only the data
// fields carry over.
func resetCache(g *Group) *Group {
	return &Group{Key: g.Key, Instance: g.Instance, M: g.M, T: g.T, O: g.O, R: g.R, Hist: g.Hist}
}

func defaultRecovery() OnDemand {
	return NewOnDemand(app.BT(), cloud.CC28XLarge)
}

func planOf(groups ...GroupPlan) Plan {
	return Plan{Groups: groups, Recovery: defaultRecovery()}
}

func TestNewGroupFields(t *testing.T) {
	m := testMarket(1)
	g := NewGroup(app.BT(), cloud.C3XLarge, cloud.ZoneA, m.Trace(cloud.C3XLarge.Name, cloud.ZoneA))
	if g.M != 32 {
		t.Errorf("M = %d, want 32", g.M)
	}
	if g.T <= 0 {
		t.Errorf("T = %d, want positive", g.T)
	}
	if g.O <= 0 || g.R <= g.O {
		t.Errorf("overheads O=%v R=%v inconsistent", g.O, g.R)
	}
	if g.MaxBid() <= 0 {
		t.Error("MaxBid not positive")
	}
}

func TestGroupDistCached(t *testing.T) {
	g := smallGroup(2, cloud.ZoneA, 8)
	a := g.Dist(0.05)
	b := g.Dist(0.05)
	if a != b {
		t.Fatal("Dist not cached")
	}
}

func TestCheckpointsAndSpotTime(t *testing.T) {
	g := &Group{T: 10, O: 0.1}
	gp := GroupPlan{Group: g, Bid: 1, Interval: 3}
	cases := []struct {
		t    int
		n    int
		wall float64
	}{
		{0, 0, 0},
		{2, 0, 2},
		{3, 1, 3.1},
		{6, 2, 6.2},
		{10, 3, 10.3},
	}
	for _, c := range cases {
		if n := gp.Checkpoints(c.t); n != c.n {
			t.Errorf("Checkpoints(%d) = %d, want %d", c.t, n, c.n)
		}
		if w := gp.SpotTime(c.t); math.Abs(w-c.wall) > 1e-12 {
			t.Errorf("SpotTime(%d) = %v, want %v", c.t, w, c.wall)
		}
	}
}

func TestNoCheckpointConvention(t *testing.T) {
	g := &Group{T: 10, O: 0.1, R: 0.2}
	gp := GroupPlan{Group: g, Bid: 1, Interval: 10} // F = T: disabled
	if gp.Checkpoints(9) != 0 {
		t.Error("F=T should disable checkpoints")
	}
	if gp.SpotTime(9) != 9 {
		t.Error("F=T should add no overhead")
	}
	if gp.Ratio(9) != 1 {
		t.Error("F=T failure should require a full restart")
	}
	if gp.Ratio(10) != 0 {
		t.Error("completion should leave no work")
	}
}

func TestRatioFormula(t *testing.T) {
	g := &Group{T: 10, O: 0.05, R: 0.5}
	gp := GroupPlan{Group: g, Bid: 1, Interval: 4}
	cases := []struct {
		t    int
		want float64
	}{
		{0, 1},                   // before first checkpoint
		{3, 1},                   // still before first checkpoint
		{4, (10 - 4 + 0.5) / 10}, // one checkpoint saved
		{7, (10 - 4 + 0.5) / 10}, // still one checkpoint
		{8, (10 - 8 + 0.5) / 10}, // two checkpoints
		{10, 0},                  // completed
	}
	for _, c := range cases {
		if r := gp.Ratio(c.t); math.Abs(r-c.want) > 1e-12 {
			t.Errorf("Ratio(%d) = %v, want %v", c.t, r, c.want)
		}
	}
}

func TestRatioClamped(t *testing.T) {
	// Huge recovery overhead must not push the ratio above 1.
	g := &Group{T: 10, O: 0.05, R: 50}
	gp := GroupPlan{Group: g, Bid: 1, Interval: 2}
	for tt := 0; tt < 10; tt++ {
		if r := gp.Ratio(tt); r < 0 || r > 1 {
			t.Fatalf("Ratio(%d) = %v outside [0,1]", tt, r)
		}
	}
}

func TestEvaluateEmptyPlanIsPureOnDemand(t *testing.T) {
	p := planOf()
	est := Evaluate(p)
	if math.Abs(est.Cost-p.Recovery.FullCost()) > 1e-9 {
		t.Errorf("Cost = %v, want %v", est.Cost, p.Recovery.FullCost())
	}
	if math.Abs(est.Time-p.Recovery.T) > 1e-9 {
		t.Errorf("Time = %v, want %v", est.Time, p.Recovery.T)
	}
	if est.PAllFail != 1 {
		t.Error("pure on-demand should have PAllFail = 1")
	}
}

func TestEvaluateMatchesBruteSingleGroup(t *testing.T) {
	g := smallGroup(3, cloud.ZoneA, 10)
	for _, bid := range []float64{0.02, 0.04, 0.1, 1.0} {
		p := planOf(GroupPlan{Group: g, Bid: bid, Interval: 3})
		assertEstimatesEqual(t, Evaluate(p), EvaluateBrute(p))
	}
}

func TestEvaluateMatchesBruteTwoGroups(t *testing.T) {
	g1 := smallGroup(4, cloud.ZoneA, 8)
	g2 := smallGroup(4, cloud.ZoneC, 9)
	p := planOf(
		GroupPlan{Group: g1, Bid: 0.05, Interval: 2},
		GroupPlan{Group: g2, Bid: 0.03, Interval: 4},
	)
	assertEstimatesEqual(t, Evaluate(p), EvaluateBrute(p))
}

func TestEvaluateMatchesBruteThreeGroups(t *testing.T) {
	g1 := smallGroup(5, cloud.ZoneA, 6)
	g2 := smallGroup(5, cloud.ZoneB, 7)
	g3 := smallGroup(5, cloud.ZoneC, 5)
	p := planOf(
		GroupPlan{Group: g1, Bid: 0.05, Interval: 2},
		GroupPlan{Group: g2, Bid: 0.04, Interval: 7}, // checkpoints disabled
		GroupPlan{Group: g3, Bid: 0.02, Interval: 1},
	)
	assertEstimatesEqual(t, Evaluate(p), EvaluateBrute(p))
}

func TestEvaluateMatchesBruteRandomized(t *testing.T) {
	f := func(seed uint64, b1Raw, b2Raw, f1Raw, f2Raw float64) bool {
		g1 := smallGroup(seed%100, cloud.ZoneA, 5+int(seed%4))
		g2 := smallGroup(seed%100+1, cloud.ZoneC, 4+int(seed%5))
		norm := func(raw, lo, hi float64) float64 {
			return lo + math.Mod(math.Abs(raw), hi-lo)
		}
		p := planOf(
			GroupPlan{Group: g1, Bid: norm(b1Raw, 0.005, 1.0), Interval: norm(f1Raw, 0.5, float64(g1.T)+1)},
			GroupPlan{Group: g2, Bid: norm(b2Raw, 0.005, 1.0), Interval: norm(f2Raw, 0.5, float64(g2.T)+1)},
		)
		a, b := Evaluate(p), EvaluateBrute(p)
		return closeEnough(a.Cost, b.Cost) && closeEnough(a.Time, b.Time) &&
			closeEnough(a.PAllFail, b.PAllFail) && closeEnough(a.EMinRatio, b.EMinRatio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func assertEstimatesEqual(t *testing.T, a, b Estimate) {
	t.Helper()
	check := func(name string, x, y float64) {
		t.Helper()
		if !closeEnough(x, y) {
			t.Errorf("%s: fast %v vs brute %v", name, x, y)
		}
	}
	check("Cost", a.Cost, b.Cost)
	check("CostSpot", a.CostSpot, b.CostSpot)
	check("CostOD", a.CostOD, b.CostOD)
	check("Time", a.Time, b.Time)
	check("TimeSpot", a.TimeSpot, b.TimeSpot)
	check("TimeOD", a.TimeOD, b.TimeOD)
	check("PAllFail", a.PAllFail, b.PAllFail)
	check("EMinRatio", a.EMinRatio, b.EMinRatio)
}

func TestHighBidNearZeroFailure(t *testing.T) {
	g := smallGroup(6, cloud.ZoneA, 10)
	p := planOf(GroupPlan{Group: g, Bid: g.MaxBid() + 1, Interval: float64(g.T)})
	est := Evaluate(p)
	if est.PAllFail != 0 {
		t.Errorf("PAllFail = %v, want 0 at max bid", est.PAllFail)
	}
	if est.CostOD != 0 {
		t.Errorf("CostOD = %v, want 0 when the group always completes", est.CostOD)
	}
	if math.Abs(est.TimeSpot-float64(g.T)) > 1e-9 {
		t.Errorf("TimeSpot = %v, want %d", est.TimeSpot, g.T)
	}
}

func TestReplicationReducesAllFailProbability(t *testing.T) {
	g1 := smallGroup(7, cloud.ZoneA, 10)
	g2 := smallGroup(7, cloud.ZoneC, 10)
	single := Evaluate(planOf(GroupPlan{Group: g1, Bid: 0.03, Interval: 3}))
	double := Evaluate(planOf(
		GroupPlan{Group: g1, Bid: 0.03, Interval: 3},
		GroupPlan{Group: g2, Bid: 0.03, Interval: 3},
	))
	if double.PAllFail > single.PAllFail+1e-12 {
		t.Errorf("adding a replica raised PAllFail: %v > %v", double.PAllFail, single.PAllFail)
	}
	if double.EMinRatio > single.EMinRatio+1e-12 {
		t.Errorf("adding a replica raised EMinRatio: %v > %v", double.EMinRatio, single.EMinRatio)
	}
}

func TestCheckpointsReduceRecoveryWork(t *testing.T) {
	g := smallGroup(8, cloud.ZoneA, 12)
	bid := 0.03
	with := Evaluate(planOf(GroupPlan{Group: g, Bid: bid, Interval: 3}))
	without := Evaluate(planOf(GroupPlan{Group: g, Bid: bid, Interval: float64(g.T)}))
	if with.EMinRatio >= without.EMinRatio {
		t.Errorf("checkpoints did not reduce expected recovery work: %v >= %v",
			with.EMinRatio, without.EMinRatio)
	}
}

func TestEvaluatePanicsOnInvalidPlan(t *testing.T) {
	g := smallGroup(9, cloud.ZoneA, 5)
	bad := []Plan{
		{Groups: []GroupPlan{{Group: nil, Bid: 1, Interval: 1}}, Recovery: defaultRecovery()},
		{Groups: []GroupPlan{{Group: g, Bid: 0, Interval: 1}}, Recovery: defaultRecovery()},
		{Groups: []GroupPlan{{Group: g, Bid: 1, Interval: 0}}, Recovery: defaultRecovery()},
		{Groups: nil, Recovery: OnDemand{}},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("plan %d did not panic", i)
				}
			}()
			Evaluate(p)
		}()
	}
}

// pgFrom builds a PreparedGroup whose ratio and spot-time distributions
// are both the given discrete distribution, for exercising the
// expectation combinators directly.
func pgFrom(vals, probs []float64) *PreparedGroup {
	pg := &PreparedGroup{ratioVals: vals, timeVals: vals}
	pg.ratioTail = make([]float64, len(vals)+1)
	pg.ratioTail[0] = 1
	for j, p := range probs {
		pg.ratioTail[j+1] = pg.ratioTail[j] - p
	}
	pg.timeCDF = make([]float64, len(vals)+1)
	for j, p := range probs {
		pg.timeCDF[j+1] = pg.timeCDF[j] + p
	}
	return pg
}

func TestExpectedMinMaxSimple(t *testing.T) {
	// Two deterministic "distributions": min is 2, max is 5.
	a := pgFrom([]float64{2}, []float64{1})
	b := pgFrom([]float64{5}, []float64{1})
	if m := expectedMin([]*PreparedGroup{a, b}, make([]int, 2)); math.Abs(m-2) > 1e-12 {
		t.Errorf("expectedMin = %v, want 2", m)
	}
	if m := expectedMax([]*PreparedGroup{a, b}, make([]int, 2)); math.Abs(m-5) > 1e-12 {
		t.Errorf("expectedMax = %v, want 5", m)
	}
}

func TestExpectedMinTwoCoinFlips(t *testing.T) {
	// X,Y uniform on {0, 10}: E[min] = 10 * P(both=10) = 2.5;
	// E[max] = 10 * (1 - P(both=0)) = 7.5.
	a := pgFrom([]float64{0, 10}, []float64{0.5, 0.5})
	b := pgFrom([]float64{0, 10}, []float64{0.5, 0.5})
	if m := expectedMin([]*PreparedGroup{a, b}, make([]int, 2)); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("expectedMin = %v, want 2.5", m)
	}
	if m := expectedMax([]*PreparedGroup{a, b}, make([]int, 2)); math.Abs(m-7.5) > 1e-12 {
		t.Errorf("expectedMax = %v, want 7.5", m)
	}
}

func TestOnDemandHelpers(t *testing.T) {
	od := NewOnDemand(app.BT(), cloud.CC28XLarge)
	if od.M != 4 {
		t.Errorf("M = %d, want 4", od.M)
	}
	if math.Abs(od.Rate()-4*cloud.CC28XLarge.OnDemand) > 1e-12 {
		t.Errorf("Rate = %v", od.Rate())
	}
	if math.Abs(od.FullCost()-od.Rate()*od.T) > 1e-9 {
		t.Errorf("FullCost = %v", od.FullCost())
	}
}

func TestGroupAgainstFlatTrace(t *testing.T) {
	// A flat trace below the bid: the group always completes; expected
	// cost is exactly price * (T + O*floor(T/F)) * M.
	flat := trace.New(1, func() []float64 {
		p := make([]float64, 100)
		for i := range p {
			p[i] = 0.01
		}
		return p
	}())
	g := NewGroup(app.BT(), cloud.M1Medium, cloud.ZoneB, flat)
	g.T = 10
	g = resetCache(g)
	gp := GroupPlan{Group: g, Bid: 0.02, Interval: 4}
	est := Evaluate(planOf(gp))
	wantSpot := 0.01 * (10 + g.O*2) * float64(g.M)
	if math.Abs(est.CostSpot-wantSpot) > 1e-9 {
		t.Errorf("CostSpot = %v, want %v", est.CostSpot, wantSpot)
	}
	if est.CostOD != 0 {
		t.Errorf("CostOD = %v, want 0", est.CostOD)
	}
}

func TestDistHorizonMatchesGroupT(t *testing.T) {
	g := smallGroup(10, cloud.ZoneA, 7)
	d := g.Dist(0.05)
	if d.T != 7 {
		t.Fatalf("dist horizon %d, want 7", d.T)
	}
	_ = stats.NewRNG // keep import for potential extension
}
