package model

import (
	"testing"

	"sompi/internal/app"
	"sompi/internal/cloud"
)

// Benchmarks characterize the central design choice of this package: the
// product-form evaluator (Evaluate) against the paper's joint enumeration
// (EvaluateBrute). With K=3 groups and T≈10 the gap is already orders of
// magnitude; at realistic T≈30 the brute evaluator is unusable inside a
// bid search.

func benchPlan(tb testing.TB, T int) Plan {
	tb.Helper()
	m := cloud.GenerateMarket(cloud.DefaultCatalog(), cloud.DefaultZones(), 24*14, 99)
	mk := func(zone string) GroupPlan {
		g := NewGroup(app.BT(), cloud.M1Medium, zone, m.Trace(cloud.M1Medium.Name, zone))
		g.T = T
		return GroupPlan{Group: resetCache(g), Bid: 0.04, Interval: 3}
	}
	return Plan{
		Groups:   []GroupPlan{mk(cloud.ZoneA), mk(cloud.ZoneB), mk(cloud.ZoneC)},
		Recovery: NewOnDemand(app.BT(), cloud.CC28XLarge),
	}
}

func BenchmarkEvaluateFast(b *testing.B) {
	p := benchPlan(b, 10)
	Evaluate(p) // warm the distribution caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(p)
	}
}

func BenchmarkEvaluateBrute(b *testing.B) {
	p := benchPlan(b, 10)
	EvaluateBrute(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateBrute(p)
	}
}

func BenchmarkEvaluatePreparedOnly(b *testing.B) {
	// The inner loop of the optimizer: combining already-prepared groups.
	p := benchPlan(b, 30)
	pgs := make([]*PreparedGroup, len(p.Groups))
	for i, gp := range p.Groups {
		pgs[i] = Prepare(gp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluatePrepared(pgs, p.Recovery)
	}
}

func BenchmarkPrepare(b *testing.B) {
	p := benchPlan(b, 30)
	Evaluate(p) // warm caches so Prepare cost excludes trace scans
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prepare(p.Groups[i%len(p.Groups)])
	}
}
