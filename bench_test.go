package sompi

import (
	"testing"

	"sompi/internal/app"
	"sompi/internal/experiments"
	"sompi/internal/report"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation end to end (market synthesis, planning, Monte Carlo replay,
// table rendering). Replication counts are scaled down so a full
// `go test -bench=.` pass finishes in minutes; cmd/experiments runs the
// same constructors at paper scale. The rendered table from the final
// iteration is logged so a bench run doubles as a results run.

// benchParams keeps benchmark iterations affordable while exercising the
// full pipeline.
func benchParams() experiments.Params {
	return experiments.Params{
		Seed:        42,
		MarketHours: 24 * 12,
		Runs:        3,
		Apps:        []app.Profile{app.BT(), app.FT(), app.BTIO()},
	}
}

func runExperiment(b *testing.B, f func(experiments.Params) *report.Table) {
	b.Helper()
	var tab *report.Table
	for i := 0; i < b.N; i++ {
		tab = f(benchParams())
	}
	b.StopTimer()
	if tab != nil {
		b.Logf("\n%s", tab)
	}
}

func BenchmarkFig1SpotPriceVariation(b *testing.B) { runExperiment(b, experiments.Fig1) }

func BenchmarkFig2PriceHistograms(b *testing.B) { runExperiment(b, experiments.Fig2) }

func BenchmarkFig4FailureRateAndPrice(b *testing.B) { runExperiment(b, experiments.Fig4) }

func BenchmarkFig5CostComparison(b *testing.B) { runExperiment(b, experiments.Fig5) }

func BenchmarkTable2ExecutionTime(b *testing.B) { runExperiment(b, experiments.Table2) }

func BenchmarkFig6HeuristicComparison(b *testing.B) { runExperiment(b, experiments.Fig6) }

func BenchmarkFig7DeadlineSweep(b *testing.B) { runExperiment(b, experiments.Fig7) }

func BenchmarkFig8FaultToleranceAblation(b *testing.B) { runExperiment(b, experiments.Fig8) }

func BenchmarkParamSlack(b *testing.B) { runExperiment(b, experiments.Slack) }

func BenchmarkParamKappa(b *testing.B) { runExperiment(b, experiments.Kappa) }

func BenchmarkParamTm(b *testing.B) { runExperiment(b, experiments.Tm) }

func BenchmarkAccuracyFailureRate(b *testing.B) { runExperiment(b, experiments.AccFRF) }

func BenchmarkAccuracyModel(b *testing.B) { runExperiment(b, experiments.AccModel) }
