# SOMPI build and verification targets. `make check` is the full gate:
# it must pass before every commit.

GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel search and the Group caches are exercised under the race
# detector; this is the concurrency-soundness gate.
race:
	$(GO) test -race ./...

check: build vet race

# Regenerate the optimizer benchmark-regression file. Compares the
# exhaustive serial search against branch-and-bound and the parallel
# worker pool, and fails if the variants disagree on the plan.
bench:
	$(GO) run ./cmd/bench -benchtime 5x -out BENCH_opt.json
