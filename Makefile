# SOMPI build and verification targets. `make check` is the full gate:
# it must pass before every commit.

GO ?= go

.PHONY: all build vet test race serve-smoke tournament-smoke replay-smoke cluster-smoke fuzz bench obs-bench bench-serve bench-replay check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel search and the Group caches are exercised under the race
# detector; this is the concurrency-soundness gate.
race:
	$(GO) test -race ./...

# Boot a real sompid process, ingest a tick, request a plan over HTTP and
# byte-diff it against the library-path optimizer, then SIGTERM for the
# graceful-shutdown check — plus the crash stage: SIGKILL a -data-dir
# sompid mid-session and assert the restart recovers it exactly.
serve-smoke:
	$(GO) run ./cmd/serve-smoke

# Tiny fixed tournament grid (every strategy x every scenario, seconds
# scale), then verify the ranking-report JSON schema and that the "sompi"
# strategy's plan is byte-identical to the library optimizer path.
tournament-smoke:
	$(GO) run ./cmd/sompi tournament -smoke > /dev/null

# Capture/replay end-to-end gate: boot sompid -capture-log and drive
# mixed traffic, SIGTERM-seal the log, twin-diff the replay against an
# in-memory and a -data-dir sompid (zero plan-byte diffs, rules file
# passes), prove a violated rules file exits with the rules code, and
# run the sustained-load mode with -append-bench against a scratch copy.
replay-smoke:
	$(GO) run ./cmd/replay-smoke

# 2-node cluster failover gate: boot nodes a+b plus a single-node
# reference, twin-diff a mixed capture through sompi-replay (zero
# plan-byte diffs between the cluster and the single node), SIGKILL b
# mid-session, and require a to promote b's shards and sessions and
# serve byte-identical plans, with sane merged /cluster views.
cluster-smoke:
	$(GO) run ./cmd/cluster-smoke

# Short-budget fuzz pass over the WAL record codec: the decoders must
# return typed errors, never panic, on arbitrary torn/corrupt input.
# (go test -fuzz takes one target per invocation.)
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz 'FuzzDecodeRecord' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz 'FuzzDecodeTick' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/harness -run '^$$' -fuzz 'FuzzDecodeCaptureRecord' -fuzztime $(FUZZTIME)

check: build vet race serve-smoke tournament-smoke replay-smoke cluster-smoke

# Regenerate the optimizer benchmark-regression file. Compares the
# exhaustive serial search against branch-and-bound and the parallel
# worker pool, and fails if the variants disagree on the plan.
bench:
	$(GO) run ./cmd/bench -benchtime 5x -out BENCH_opt.json

# Observability overhead gate: the κ-subset search with tracing disabled
# (no collector in context) must stay within 2% of the serial-pruned
# ns/op recorded in BENCH_opt.json.
obs-bench:
	$(GO) run ./cmd/bench -obscheck -baseline BENCH_opt.json

# Regenerate the serve-path scaling file: ingest p99 with 10k tracked
# sessions must stay within 2x of the empty-server baseline, and one
# T_m boundary crossing must re-optimize every session (dedup makes the
# identical ones share a single optimizer run).
bench-serve:
	$(GO) run ./cmd/bench-serve -out BENCH_serve.json

# Sustained-load replay against a live sompid: synthesize a mixed
# plan/ingest/listing capture, replay it full speed, and append the
# plan QPS / ingest QPS / p99-under-mixed-load summary to
# BENCH_serve.json under the "replay" key.
bench-replay:
	$(GO) run ./cmd/bench-replay -out BENCH_serve.json
