// Market study (Figures 1, 2 and 4 style): spot price statistics, daily
// distribution stability, and the failure-rate/expected-price trade-off
// that drives bid selection.
package main

import (
	"fmt"

	"sompi"
	"sompi/internal/cloud"
	"sompi/internal/failure"
)

func main() {
	market := sompi.GenerateMarket(24*14, 42)

	fmt.Println("market                     mean $/h   max $/h   frac below on-demand")
	for _, key := range market.Keys() {
		it, _ := market.Catalog().ByName(key.Type)
		tr := market.Trace(key.Type, key.Zone)
		fmt.Printf("%-26s %8.3f  %8.3f   %.0f%%\n",
			key, tr.Mean(), tr.Max(), 100*tr.FractionBelow(it.OnDemand))
	}

	// The Figure 4 trade-off for one market: raising the bid buys
	// survival but pays a higher expected price.
	tr := market.Trace(cloud.M1Medium.Name, cloud.ZoneA)
	fmt.Println("\nm1.medium/us-east-1a: bid vs 12h failure probability and expected price")
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		bid := tr.Max() * frac
		d := failure.Estimate(tr, bid, 12)
		fmt.Printf("  bid $%.3f (%.0f%% of max): fail %.0f%%, S(P) $%.4f/h\n",
			bid, frac*100, 100*(1-d.Complete()), failure.ExpectedSpotPrice(tr, bid))
	}
}
