// Deadline study (Figure 7 style): how the cost of a compute-intensive
// campaign falls as its deadline loosens, and how the selected on-demand
// recovery type steps down the catalog.
package main

import (
	"fmt"
	"log"

	"sompi"
)

func main() {
	market := sompi.GenerateMarket(24*30, 7)
	bt := sompi.WorkloadBT()

	var baseline float64
	for _, it := range sompi.DefaultCatalog() {
		if h := sompi.EstimateHours(bt, it); baseline == 0 || h < baseline {
			baseline = h
		}
	}

	fmt.Println("deadline-mult  expected-cost  groups  recovery")
	for _, mult := range []float64{1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0} {
		res, err := sompi.Optimize(sompi.Config{
			Profile:  bt,
			Market:   market.Window(0, 96),
			Deadline: baseline * mult,
		})
		if err != nil {
			log.Printf("mult %.2f: %v", mult, err)
			continue
		}
		fmt.Printf("%12.2f  $%11.0f  %6d  %s\n",
			mult, res.Est.Cost, len(res.Plan.Groups), res.Plan.Recovery.Instance.Name)
	}
}
