// LAMMPS scaling study (Section 5.3.1): with few processes the run is
// computation-intensive and cheap small instances win; with many
// processes communication dominates and cc2.8xlarge becomes the right
// fleet. Compares SOMPI against the paper's comparison strategies at both
// scales.
package main

import (
	"fmt"

	"sompi"
)

func main() {
	market := sompi.GenerateMarket(24*30, 11)

	for _, procs := range []int{32, 128} {
		p := sompi.WorkloadLAMMPS(procs)
		var baseCost, baseTime float64
		for _, it := range sompi.DefaultCatalog() {
			h := sompi.EstimateHours(p, it)
			if baseTime == 0 || h < baseTime {
				baseTime = h
				m := (p.Procs + it.Cores - 1) / it.Cores
				baseCost = h * it.OnDemand * float64(m)
			}
		}
		deadline := baseTime * 1.5
		fmt.Printf("== LAMMPS with %d processes (%s): baseline $%.0f in %.1fh ==\n",
			procs, p.Class, baseCost, baseTime)

		runner := &sompi.Runner{Market: market, Profile: p}
		for _, s := range []sompi.Strategy{
			sompi.NewOnDemand(),
			sompi.NewMaratheOpt(market),
			sompi.NewSOMPI(market),
		} {
			st := sompi.MonteCarlo(s, runner, sompi.MCConfig{
				Deadline: deadline, Runs: 5, Seed: 3,
			})
			fmt.Printf("  %-12s $%6.0f (%.2fx baseline), %.1fh\n",
				st.Name, st.Cost.Mean(), st.Cost.Mean()/baseCost, st.Hours.Mean())
		}
		fmt.Println()
	}
}
