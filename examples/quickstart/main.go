// Quickstart: synthesize a spot market, ask SOMPI for a plan for the NPB
// BT campaign with a 1.5x deadline, and replay the adaptive strategy a few
// times to see realized costs.
package main

import (
	"fmt"
	"log"

	"sompi"
)

func main() {
	// A month of spot-price history for every (type, zone) market.
	market := sompi.GenerateMarket(24*30, 42)

	// The workload: NPB BT at 128 processes, profiled per Section 4.4.
	bt := sompi.WorkloadBT()
	var baseline float64
	for _, it := range sompi.DefaultCatalog() {
		if h := sompi.EstimateHours(bt, it); baseline == 0 || h < baseline {
			baseline = h
		}
	}
	deadline := baseline * 1.5
	fmt.Printf("BT baseline %.1fh; deadline %.1fh\n", baseline, deadline)

	// One-shot optimization from the first four days of history.
	res, err := sompi.Optimize(sompi.Config{
		Profile:  bt,
		Market:   market.Window(0, 96),
		Deadline: deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d circle group(s), expected $%.0f in %.1fh\n",
		len(res.Plan.Groups), res.Est.Cost, res.Est.Time)
	for _, gp := range res.Plan.Groups {
		fmt.Printf("  %s x%d, bid $%.3f/h, checkpoint every %.2fh\n",
			gp.Group.Key, gp.Group.M, gp.Bid, gp.Interval)
	}

	// Replay the full adaptive strategy against the market.
	runner := &sompi.Runner{Market: market, Profile: bt}
	stats := sompi.MonteCarlo(sompi.NewSOMPI(market), runner, sompi.MCConfig{
		Deadline: deadline, Runs: 5, Seed: 1,
	})
	fmt.Printf("adaptive SOMPI over %d replays: mean $%.0f, mean %.1fh, %d deadline misses\n",
		stats.Runs, stats.Cost.Mean(), stats.Hours.Mean(), stats.DeadlineMisses)
}
