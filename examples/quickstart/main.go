// Quickstart for the v1 API: synthesize a spot market, ask SOMPI for a
// plan for the NPB BT campaign with a 1.5x deadline (cancellable,
// typed-error optimization), ingest fresh prices into the versioned
// market, and replay the adaptive strategy a few times to see realized
// costs. The same flow is served over HTTP by cmd/sompid.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"sompi"
)

func main() {
	// A month of spot-price history for every (type, zone) market.
	// Construction yields market version 1; every ingestion bumps it.
	market := sompi.GenerateMarket(24*30, 42)

	// The workload: NPB BT at 128 processes, profiled per Section 4.4.
	bt := sompi.WorkloadBT()
	var baseline float64
	for _, it := range sompi.DefaultCatalog() {
		if h := sompi.EstimateHours(bt, it); baseline == 0 || h < baseline {
			baseline = h
		}
	}
	deadline := baseline * 1.5
	fmt.Printf("BT baseline %.1fh; deadline %.1fh\n", baseline, deadline)

	// One-shot optimization from the first four days of history. The v1
	// entry point takes a context (cancel it and the κ-subset search
	// stops at the next evaluation) and functional options; out-of-range
	// knobs come back as ErrInvalidConfig, an unmeetable deadline as
	// ErrDeadlineInfeasible — match them with errors.Is.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := sompi.OptimizeContext(ctx, sompi.Config{
		Profile:  bt,
		Market:   market.Window(0, 96),
		Deadline: deadline,
	}, sompi.WithKappa(4))
	switch {
	case errors.Is(err, sompi.ErrDeadlineInfeasible):
		log.Fatalf("no fleet meets %.1fh: %v", deadline, err)
	case err != nil:
		log.Fatal(err)
	}
	fmt.Printf("plan: %d circle group(s), expected $%.0f in %.1fh (v%d market)\n",
		len(res.Plan.Groups), res.Est.Cost, res.Est.Time, market.Version())
	for _, gp := range res.Plan.Groups {
		fmt.Printf("  %s x%d, bid $%.3f/h, checkpoint every %.2fh\n",
			gp.Group.Key, gp.Group.M, gp.Bid, gp.Interval)
	}

	// Streaming ingestion: append an hour of fresh ticks to one market.
	// Traces are immutable — views captured above stay consistent — and
	// the version bump is what invalidates sompid's plan cache.
	fresh := []float64{0.05, 0.05, 0.06, 0.05, 0.07, 0.05, 0.05, 0.05, 0.06, 0.05, 0.05, 0.05}
	version, err := market.Append(sompi.MarketKey{Type: "m1.medium", Zone: "us-east-1a"}, fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d samples; market now v%d\n", len(fresh), version)

	// Replay the full adaptive strategy against the market. The context
	// variant validates the config (typed errors instead of panics) and
	// is deterministic at any worker count for a fixed seed.
	runner := &sompi.Runner{Market: market, Profile: bt}
	stats, err := sompi.MonteCarloContext(ctx, sompi.NewSOMPI(market), runner, sompi.MCConfig{
		Deadline: deadline, Runs: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive SOMPI over %d replays: mean $%.0f, mean %.1fh, %d deadline misses\n",
		stats.Runs, stats.Cost.Mean(), stats.Hours.Mean(), stats.DeadlineMisses)
}
